//! A minimal TOML parser for scenario sweep specs.
//!
//! The workspace's vendored `serde` is an API-shape stub (the build
//! environment has no crates.io access, so there is no `toml` crate to
//! plug into it); this module implements the TOML subset the spec format
//! uses, hand-rolled and fully tested:
//!
//! * `[table.header]` and `[[array.of.tables]]` sections;
//! * `key = value` pairs with bare keys;
//! * basic `"strings"` (with `\"`, `\\`, `\n`, `\t` escapes), integers
//!   (with `_` separators), floats, booleans, and single-line inline
//!   arrays of scalars;
//! * `#` comments and blank lines.
//!
//! Anything outside the subset fails loudly with a line number — a spec
//! that parses is a spec whose meaning is unambiguous.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An inline array (or an `[[array.of.tables]]`).
    Array(Vec<Value>),
    /// A table.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// The table behind this value, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer behind this value, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float behind this value (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for anything outside
/// the supported subset (see the module docs).
pub fn parse(input: &str) -> Result<BTreeMap<String, Value>, TomlError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines, and
    // whether it is the newest element of an array-of-tables.
    let mut current: Vec<String> = Vec::new();
    let mut current_is_array_elem = false;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?;
            current = parse_key_path(header, lineno)?;
            current_is_array_elem = true;
            push_array_table(&mut root, &current, lineno)?;
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [header]"))?;
            current = parse_key_path(header, lineno)?;
            current_is_array_elem = false;
            ensure_table(&mut root, &current, lineno)?;
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let key = key.trim();
            if !is_bare_key(key) {
                return Err(err(lineno, format!("unsupported key `{key}`")));
            }
            let value = parse_value(value.trim(), lineno)?;
            let table = navigate_mut(&mut root, &current, current_is_array_elem, lineno)?;
            if table.insert(key.to_owned(), value).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        }
    }
    Ok(root)
}

/// Strips a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return line.get(..idx).unwrap_or(line),
            _ => escaped = false,
        }
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Maximum dotted-path depth of a table header. The spec language uses at
/// most two levels (`[[scenario.phase]]`); the bound exists because every
/// path segment nests one `Value::Table`, whose destructor recurses — a
/// `[a.a.a…]` header thousands of segments deep would build a value that
/// overflows the stack when dropped.
const MAX_TABLE_DEPTH: usize = 16;

fn parse_key_path(path: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = path
        .trim()
        .split('.')
        .map(|p| p.trim().to_owned())
        .collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return Err(err(lineno, format!("unsupported table path `{path}`")));
    }
    if parts.len() > MAX_TABLE_DEPTH {
        return Err(err(
            lineno,
            format!("table path deeper than {MAX_TABLE_DEPTH} levels"),
        ));
    }
    Ok(parts)
}

/// Walks to (creating as needed) the table at `path`.
fn ensure_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    let mut table = root;
    for part in path {
        let entry = table
            .entry(part.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        table = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(lineno, format!("`{part}` is not a table"))),
            },
            _ => return Err(err(lineno, format!("`{part}` is not a table"))),
        };
    }
    Ok(table)
}

/// Appends a fresh element to the array-of-tables at `path`.
fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| err(lineno, "empty [[header]]"))?;
    let parent = ensure_table(root, parents, lineno)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => {
            a.push(Value::Table(BTreeMap::new()));
            Ok(())
        }
        _ => Err(err(lineno, format!("`{last}` is not an array of tables"))),
    }
}

/// Walks to the table `key = value` lines currently target.
fn navigate_mut<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    is_array_elem: bool,
    lineno: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    if !is_array_elem {
        return ensure_table(root, path, lineno);
    }
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| err(lineno, "no current table"))?;
    let parent = ensure_table(root, parents, lineno)?;
    match parent.get_mut(last) {
        Some(Value::Array(a)) => match a.last_mut() {
            Some(Value::Table(t)) => Ok(t),
            _ => Err(err(lineno, "array of tables has no open element")),
        },
        _ => Err(err(lineno, format!("`{last}` is not an array of tables"))),
    }
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest, lineno);
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "arrays must close on the same line"))?;
        let mut items = Vec::new();
        for piece in split_array_items(body) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            // Reject nesting *before* recursing: parse_value calls itself
            // once per `[`, so a `[[[[…` value thousands of brackets deep
            // would otherwise exhaust the stack before the rejection on the
            // way back out could fire.
            if piece.starts_with('[') {
                return Err(err(lineno, "nested arrays are not supported"));
            }
            items.push(parse_value(piece, lineno)?);
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let numeric: String = text.chars().filter(|&c| c != '_').collect();
    if numeric.contains(['.', 'e', 'E']) {
        if let Ok(f) = numeric.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Ok(i) = numeric.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(err(lineno, format!("unsupported value `{text}`")))
}

/// Splits inline-array items on top-level commas (commas inside string
/// literals do not count).
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in body.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(body.get(start..idx).unwrap_or_default());
                start = idx + 1;
            }
            _ => escaped = false,
        }
    }
    items.push(body.get(start..).unwrap_or_default());
    items
}

fn parse_string(rest: &str, lineno: usize) -> Result<Value, TomlError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(err(lineno, format!("trailing content `{}`", tail.trim())));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(err(lineno, format!("unsupported escape `\\{other:?}`")));
                }
            },
            _ => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_spec_shape() {
        let doc = r#"
# A scenario spec.
[scenario]
name = "mixed-demo"   # inline comment
mode = "mixed"
block = 48

[[scenario.part]]
kind = "benchmark"
benchmark = "djpeg"
weight = 2

[[scenario.part]]
kind = "tlb_thrash"
weight = 1
load_fraction = 0.6

[sweep]
configs = ["Base1ldst", "MALEC"]
insts = 12_000
seed = 2013
"#;
        let root = parse(doc).expect("parses");
        let scenario = root["scenario"].as_table().unwrap();
        assert_eq!(scenario["name"].as_str(), Some("mixed-demo"));
        assert_eq!(scenario["block"].as_int(), Some(48));
        let parts = scenario["part"].as_array().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[1].as_table().unwrap()["load_fraction"].as_float(),
            Some(0.6)
        );
        let sweep = root["sweep"].as_table().unwrap();
        assert_eq!(sweep["insts"].as_int(), Some(12_000));
        let configs = sweep["configs"].as_array().unwrap();
        assert_eq!(configs[1].as_str(), Some("MALEC"));
    }

    #[test]
    fn scalars_and_escapes() {
        let root = parse(
            "a = \"x \\\"y\\\" \\n z\"\nb = -7\nc = 1.5e3\nd = true\ne = false\nf = [1, 2, 3]\n",
        )
        .expect("parses");
        assert_eq!(root["a"].as_str(), Some("x \"y\" \n z"));
        assert_eq!(root["b"].as_int(), Some(-7));
        assert_eq!(root["c"].as_float(), Some(1500.0));
        assert_eq!(root["d"], Value::Bool(true));
        assert_eq!(root["e"], Value::Bool(false));
        assert_eq!(root["f"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let root = parse("a = \"one # two\" # real comment\n").expect("parses");
        assert_eq!(root["a"].as_str(), Some("one # two"));
    }

    #[test]
    fn empty_array_parses() {
        let root = parse("a = []\n").expect("parses");
        assert_eq!(root["a"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("key = value"));

        let e = parse("a = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("[t\n").unwrap_err();
        assert!(e.message.contains("unterminated"));

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse("a = what\n").unwrap_err();
        assert!(e.message.contains("unsupported value"));
    }

    #[test]
    fn array_of_tables_under_missing_parent_is_created() {
        let root = parse("[[a.b]]\nx = 1\n[[a.b]]\nx = 2\n").expect("parses");
        let b = root["a"].as_table().unwrap()["b"].as_array().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].as_table().unwrap()["x"].as_int(), Some(2));
    }

    #[test]
    fn deep_inline_array_nesting_is_an_error_not_a_stack_overflow() {
        // parse_value recurses once per `[`; the nesting rejection must
        // fire before the recursive call, or 200k brackets kill the
        // process with SIGABRT instead of returning an error.
        let doc = format!("x = {}1{}\n", "[".repeat(200_000), "]".repeat(200_000));
        let e = parse(&doc).unwrap_err();
        assert!(e.message.contains("nested arrays"), "{e}");
        // Flat arrays (and the rejection of one-level nesting) still work.
        assert!(parse("x = [1, 2, 3]\n").is_ok());
        assert!(parse("x = [[1], 2]\n").is_err());
    }

    #[test]
    fn pathological_table_depth_is_an_error_not_a_stack_overflow() {
        // Each path segment nests one table; dropping a 10k-deep value
        // recurses 10k frames. The depth bound turns that into a clean
        // error (found by the parser-hardening proptest suite).
        let deep = (0..10_000).map(|_| "a").collect::<Vec<_>>().join(".");
        let e = parse(&format!("[{deep}]\nx = 1\n")).unwrap_err();
        assert!(e.message.contains("deeper than"), "{e}");
        let e = parse(&format!("[[{deep}]]\nx = 1\n")).unwrap_err();
        assert!(e.message.contains("deeper than"), "{e}");
        // The bound leaves real specs untouched.
        assert!(parse("[a.b.c.d]\nx = 1\n").is_ok());
    }

    #[test]
    fn redefining_scalar_as_table_fails() {
        let e = parse("a = 1\n[a]\nb = 2\n").unwrap_err();
        assert!(e.message.contains("not a table"));
    }

    #[test]
    fn keys_after_array_header_land_in_latest_element() {
        let root = parse("[[p]]\nk = 1\n[s]\nv = 2\n[[p]]\nk = 3\n").expect("parses");
        let p = root["p"].as_array().unwrap();
        assert_eq!(p[0].as_table().unwrap()["k"].as_int(), Some(1));
        assert_eq!(p[1].as_table().unwrap()["k"].as_int(), Some(3));
        assert_eq!(root["s"].as_table().unwrap()["v"].as_int(), Some(2));
    }

    /// The hardened slice sites (`strip_comment`, `split_array_items`)
    /// keep their semantics on multibyte text and edge-shaped arrays.
    #[test]
    fn comments_and_arrays_survive_multibyte_and_edges() {
        let root = parse("a = \"caf\u{e9}\" # comment après café ✓\n").expect("parses");
        assert_eq!(root["a"].as_str(), Some("café"));
        let root = parse("f = [1, 2,]\n").expect("trailing comma");
        assert_eq!(root["f"].as_array().unwrap().len(), 2);
        let root = parse("f = [,]\n").expect("empty items are skipped");
        assert_eq!(root["f"].as_array().unwrap().len(), 0);
        assert!(parse("#\u{2014}\n# only comments\n")
            .expect("parses")
            .is_empty());
    }
}
