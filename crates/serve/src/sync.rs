//! The one sanctioned way to take a mutex in this crate.
//!
//! Every lock acquisition in `malec-serve` goes through [`lock`], which
//! recovers a poisoned guard instead of propagating the poison: a worker
//! panic (real or injected by a failpoint) unwinds through `catch_unwind`,
//! and if it happened to hold a lock, the rest of the pool must keep
//! going. That is safe here because every guarded structure stays
//! consistent under mid-operation unwinds — mutations are single
//! assignments or counter bumps, never multi-step invariants left
//! half-done.
//!
//! The static-analysis gate (`malec-analyze`, lock-order pass) enforces
//! the funnel: a direct `Mutex::lock()` call anywhere else in the crate is
//! a finding, so `.lock().unwrap()` — which would convert one panicked
//! worker into a poisoned-lock cascade — cannot reappear.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // analyze: allow(lock-order) the poison-recovering funnel itself; every other lock call routes here
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
