//! JSON report emission for scenario sweeps, shape-compatible with the
//! workspace's `BENCH_simulator.json` artifact (same top-level `bench` /
//! `workload` / `workers` / wall-clock vocabulary), plus per-cell rows and
//! the generator-vs-replay digest verdict.

use malec_core::digest::digest;
use malec_core::RunSummary;

/// One config's pair of runs: generated stream and `.mtr` replay.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The generator-driven run.
    pub generated: RunSummary,
    /// Digest of the generator-driven run.
    pub digest: u64,
    /// Digest of the replay-driven run (bit-identical when the record/
    /// replay path is lossless).
    pub replay_digest: u64,
}

impl CellResult {
    /// Builds the pair, digesting both runs.
    pub fn new(generated: RunSummary, replayed: &RunSummary) -> Self {
        let d = digest(&generated);
        let r = digest(replayed);
        Self {
            generated,
            digest: d,
            replay_digest: r,
        }
    }

    /// Whether replaying the recorded trace reproduced the generator run
    /// bit for bit.
    pub fn replay_matches(&self) -> bool {
        self.digest == self.replay_digest
    }

    /// Builds a cell from a generator-side summary alone, without a replay
    /// run. Both digests are set to the generator digest, which is what a
    /// replay would produce: record/replay bit-identity is the
    /// replay-verified determinism contract the `malec-serve` result cache
    /// rests on, and server cells (fresh or cached) lean on it instead of
    /// re-running every stream twice.
    pub fn from_generated(generated: RunSummary) -> Self {
        let d = digest(&generated);
        Self {
            generated,
            digest: d,
            replay_digest: d,
        }
    }
}

/// Escapes a string for a JSON literal (shared by every JSON emitter in
/// this crate — scenario names can legally contain `\n`/`\t` via TOML
/// escapes, and those must not reach the wire raw).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_list<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> String {
    let body = items
        .into_iter()
        .map(|s| format!("\"{}\"", esc(s.as_ref())))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

/// Renders the sweep report as pretty-printed JSON.
#[allow(clippy::too_many_arguments)] // a report has this many facts
pub fn render(
    spec_path: &str,
    scenario: &str,
    segments: &[&str],
    mtr_path: &str,
    insts: u64,
    seed: u64,
    workers: usize,
    wall_seconds: f64,
    cells: &[CellResult],
) -> String {
    let configs = str_list(cells.iter().map(|c| c.generated.config.as_str()));
    let n = cells.len();
    let cells_per_sec = if wall_seconds > 0.0 {
        n as f64 / wall_seconds
    } else {
        0.0
    };
    let all_match = cells.iter().all(CellResult::replay_matches);
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let s = &c.generated;
        rows.push_str(&format!(
            "    {{\n      \"config\": \"{}\",\n      \"cycles\": {},\n      \"ipc\": {:.4},\n      \"l1_miss_rate\": {:.6},\n      \"utlb_miss_rate\": {:.6},\n      \"coverage\": {:.4},\n      \"merge_ratio\": {:.4},\n      \"energy_total\": {:.4},\n      \"digest\": \"{:#018x}\",\n      \"replay_digest\": \"{:#018x}\",\n      \"replay_matches\": {}\n    }}{}\n",
            esc(&s.config),
            s.core.cycles,
            s.core.ipc(),
            s.l1_miss_rate,
            s.utlb_miss_rate,
            s.interface.coverage(),
            s.interface.merge_ratio(),
            s.energy.total(),
            c.digest,
            c.replay_digest,
            c.replay_matches(),
            if i + 1 == n { "" } else { "," },
        ));
    }
    format!(
        "{{\n  \"bench\": \"malec_scenario_sweep\",\n  \"spec\": \"{}\",\n  \"scenario\": \"{}\",\n  \"segments\": {},\n  \"mtr\": \"{}\",\n  \"workload\": {{\n    \"configs\": {},\n    \"insts_per_cell\": {},\n    \"seed\": {},\n    \"cells\": {}\n  }},\n  \"workers\": {},\n  \"wall_seconds\": {:.4},\n  \"cells_per_sec\": {:.3},\n  \"replay_matches_generator\": {},\n  \"cells\": [\n{}  ]\n}}\n",
        esc(spec_path),
        esc(scenario),
        str_list(segments.iter().copied()),
        esc(mtr_path),
        configs,
        insts,
        seed,
        n,
        workers,
        wall_seconds,
        cells_per_sec,
        all_match,
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::Simulator;
    use malec_trace::benchmark_named;
    use malec_types::SimConfig;

    #[test]
    fn report_is_wellformed_and_escaped() {
        let gzip = benchmark_named("gzip").unwrap();
        let run = Simulator::new(SimConfig::malec()).run(&gzip, 2_000, 1);
        let cell = CellResult::new(run.clone(), &run);
        assert!(cell.replay_matches());
        let json = render(
            "spec \"quoted\".toml",
            "demo",
            &["gzip"],
            "demo.mtr",
            2_000,
            1,
            3,
            0.5,
            std::slice::from_ref(&cell),
        );
        assert!(json.contains("\\\"quoted\\\""), "escaping applied");
        assert!(json.contains("\"replay_matches_generator\": true"));
        assert!(json.contains("\"workers\": 3"));
        assert!(json.contains("\"cells_per_sec\": 2.000"));
        // Balanced braces/brackets (cheap well-formedness probe; the full
        // shape is exercised end-to-end by the CLI integration test).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn mismatched_digests_are_reported() {
        let gzip = benchmark_named("gzip").unwrap();
        let a = Simulator::new(SimConfig::malec()).run(&gzip, 1_000, 1);
        let b = Simulator::new(SimConfig::malec()).run(&gzip, 1_000, 2);
        let cell = CellResult::new(a, &b);
        assert!(!cell.replay_matches());
        let json = render("s", "d", &[], "m", 1_000, 1, 1, 0.1, &[cell]);
        assert!(json.contains("\"replay_matches_generator\": false"));
    }
}
