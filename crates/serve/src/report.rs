//! JSON report emission for scenario sweeps, shape-compatible with the
//! workspace's `BENCH_simulator.json` artifact (same top-level `bench` /
//! `workload` / `workers` / wall-clock vocabulary), plus per-cell rows and
//! the generator-vs-replay digest verdict.

use malec_core::compare::{compare_digest, CompareStats};
use malec_core::digest::digest;
use malec_core::stats::ReplicateStats;
use malec_core::RunSummary;

/// One config's pair of runs: generated stream and `.mtr` replay. Under
/// multi-seed replication the single-seed fields describe replicate 0 (the
/// legacy seed path) and [`stats`](Self::stats) carries the distribution.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The generator-driven run (replicate 0 when replicated).
    pub generated: RunSummary,
    /// Digest of the generator-driven run.
    pub digest: u64,
    /// Digest of the replay-driven run (bit-identical when the record/
    /// replay path is lossless).
    pub replay_digest: u64,
    /// Per-metric replicate statistics (`None` for single-seed cells).
    pub stats: Option<ReplicateStats>,
}

impl CellResult {
    /// Builds the pair, digesting both runs.
    pub fn new(generated: RunSummary, replayed: &RunSummary) -> Self {
        let d = digest(&generated);
        let r = digest(replayed);
        Self {
            generated,
            digest: d,
            replay_digest: r,
            stats: None,
        }
    }

    /// Attaches replicate statistics to this cell.
    #[must_use]
    pub fn with_stats(mut self, stats: ReplicateStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Whether replaying the recorded trace reproduced the generator run
    /// bit for bit.
    pub fn replay_matches(&self) -> bool {
        self.digest == self.replay_digest
    }

    /// Builds a cell from a generator-side summary alone, without a replay
    /// run. Both digests are set to the generator digest, which is what a
    /// replay would produce: record/replay bit-identity is the
    /// replay-verified determinism contract the `malec-serve` result cache
    /// rests on, and server cells (fresh or cached) lean on it instead of
    /// re-running every stream twice.
    pub fn from_generated(generated: RunSummary) -> Self {
        let d = digest(&generated);
        Self {
            generated,
            digest: d,
            replay_digest: d,
            stats: None,
        }
    }
}

/// Escapes a string for a JSON literal (shared by every JSON emitter in
/// this crate — scenario names can legally contain `\n`/`\t` via TOML
/// escapes, and those must not reach the wire raw).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_list<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> String {
    let body = items
        .into_iter()
        .map(|s| format!("\"{}\"", esc(s.as_ref())))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

/// The run-level facts a report carries besides its cells.
#[derive(Clone, Debug)]
pub struct ReportMeta<'a> {
    /// Where the spec came from (a path, `inline`, or `job:<id>`).
    pub spec_path: &'a str,
    /// Scenario name.
    pub scenario: &'a str,
    /// Segment labels of the scenario.
    pub segments: &'a [&'a str],
    /// Recorded trace path.
    pub mtr_path: &'a str,
    /// Instructions per cell.
    pub insts: u64,
    /// Base seed (replicate 0's seed).
    pub seed: u64,
    /// Maximum replicates per cell (1 = the legacy single-seed sweep).
    pub seeds: u32,
    /// Worker fan-out used.
    pub workers: usize,
    /// Sweep wall clock.
    pub wall_seconds: f64,
}

/// Renders one cell's replicate-statistics block (mean ± 95 % CI, min,
/// max, per metric), indented for the cell row.
fn stats_block(stats: &ReplicateStats) -> String {
    let mut out = format!(
        "      \"replicates\": {},\n      \"replicates_saved\": {},\n      \"metrics\": {{\n",
        stats.n, stats.saved
    );
    let last = stats.metrics.len();
    for (i, (name, m)) in stats.metrics.iter().enumerate() {
        let ci = m
            .ci95
            .map_or_else(|| "null".to_owned(), |w| format!("{w:.6}"));
        out.push_str(&format!(
            "        \"{name}\": {{ \"mean\": {:.6}, \"ci95\": {ci}, \"min\": {:.6}, \"max\": {:.6} }}{}\n",
            m.mean,
            m.min,
            m.max,
            if i + 1 == last { "" } else { "," },
        ));
    }
    out.push_str("      },\n");
    out
}

/// Renders the sweep report as pretty-printed JSON.
pub fn render(meta: &ReportMeta<'_>, cells: &[CellResult]) -> String {
    let configs = str_list(cells.iter().map(|c| c.generated.config.as_str()));
    let n = cells.len();
    let cells_per_sec = if meta.wall_seconds > 0.0 {
        n as f64 / meta.wall_seconds
    } else {
        0.0
    };
    let all_match = cells.iter().all(CellResult::replay_matches);
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let s = &c.generated;
        let stats = c.stats.as_ref().map(stats_block).unwrap_or_default();
        rows.push_str(&format!(
            "    {{\n      \"config\": \"{}\",\n      \"cycles\": {},\n      \"ipc\": {:.4},\n      \"l1_miss_rate\": {:.6},\n      \"utlb_miss_rate\": {:.6},\n      \"coverage\": {:.4},\n      \"merge_ratio\": {:.4},\n      \"energy_total\": {:.4},\n{}      \"digest\": \"{:#018x}\",\n      \"replay_digest\": \"{:#018x}\",\n      \"replay_matches\": {}\n    }}{}\n",
            esc(&s.config),
            s.core.cycles,
            s.core.ipc(),
            s.l1_miss_rate,
            s.utlb_miss_rate,
            s.interface.coverage(),
            s.interface.merge_ratio(),
            s.energy.total(),
            stats,
            c.digest,
            c.replay_digest,
            c.replay_matches(),
            if i + 1 == n { "" } else { "," },
        ));
    }
    format!(
        "{{\n  \"bench\": \"malec_scenario_sweep\",\n  \"spec\": \"{}\",\n  \"scenario\": \"{}\",\n  \"segments\": {},\n  \"mtr\": \"{}\",\n  \"workload\": {{\n    \"configs\": {},\n    \"insts_per_cell\": {},\n    \"seed\": {},\n    \"seeds\": {},\n    \"cells\": {}\n  }},\n  \"workers\": {},\n  \"wall_seconds\": {:.4},\n  \"cells_per_sec\": {:.3},\n  \"replay_matches_generator\": {},\n  \"cells\": [\n{}  ]\n}}\n",
        esc(meta.spec_path),
        esc(meta.scenario),
        str_list(meta.segments.iter().copied()),
        esc(meta.mtr_path),
        configs,
        meta.insts,
        meta.seed,
        meta.seeds,
        n,
        meta.workers,
        meta.wall_seconds,
        cells_per_sec,
        all_match,
        rows,
    )
}

/// The run-level facts a compare report carries besides its delta blocks.
#[derive(Clone, Debug)]
pub struct CompareReportMeta<'a> {
    /// Where the spec came from (a path, `inline`, or `job:<id>`).
    pub spec_path: &'a str,
    /// Scenario name.
    pub scenario: &'a str,
    /// Segment labels of the scenario.
    pub segments: &'a [&'a str],
    /// Instructions per cell.
    pub insts: u64,
    /// Base seed (shared by both sides; replicate `i` derives from it).
    pub seed: u64,
    /// Maximum shared seeds per side (the spec's `seeds` cap).
    pub seeds: u32,
    /// Worker fan-out used.
    pub workers: usize,
    /// Comparison wall clock.
    pub wall_seconds: f64,
}

/// JSON-literal text for an optional float (`null` when absent).
fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| format!("{x:.9}"))
}

/// Renders a paired comparison as pretty-printed JSON. The `digest` field
/// is [`compare_digest`] over the delta blocks (exact bit patterns), so
/// two reports describe the same comparison **iff** their digests match —
/// the serve-vs-local and golden-regression tests key on it. Run-level
/// facts that legitimately differ between drivers (spec path, workers,
/// wall clock) stay outside the digest.
pub fn render_compare(meta: &CompareReportMeta<'_>, stats: &CompareStats) -> String {
    let (wins, losses, ties) = stats.tally();
    let mut deltas = String::new();
    let last = stats.metrics.len();
    for (i, (name, d)) in stats.metrics.iter().enumerate() {
        let relative_pct = d.relative.map(|r| 100.0 * r);
        deltas.push_str(&format!(
            "    \"{name}\": {{\n      \"baseline_mean\": {:.9},\n      \"candidate_mean\": {:.9},\n      \"delta_mean\": {:.9},\n      \"ci\": {},\n      \"independent_ci\": {},\n      \"relative_pct\": {},\n      \"higher_is_better\": {},\n      \"verdict\": \"{}\"\n    }}{}\n",
            d.baseline_mean,
            d.candidate_mean,
            d.delta_mean,
            opt_num(d.ci),
            opt_num(d.independent_ci),
            opt_num(relative_pct),
            d.higher_is_better,
            d.verdict.name(),
            if i + 1 == last { "" } else { "," },
        ));
    }
    format!(
        "{{\n  \"bench\": \"malec_compare\",\n  \"spec\": \"{}\",\n  \"scenario\": \"{}\",\n  \"segments\": {},\n  \"baseline\": \"{}\",\n  \"candidate\": \"{}\",\n  \"alpha\": {},\n  \"workload\": {{\n    \"insts_per_cell\": {},\n    \"seed\": {},\n    \"seeds\": {},\n    \"replicates\": {},\n    \"replicates_saved\": {}\n  }},\n  \"workers\": {},\n  \"wall_seconds\": {:.4},\n  \"digest\": \"{:#018x}\",\n  \"verdicts\": {{ \"win\": {}, \"loss\": {}, \"tie\": {} }},\n  \"deltas\": {{\n{}  }}\n}}\n",
        esc(meta.spec_path),
        esc(meta.scenario),
        str_list(meta.segments.iter().copied()),
        esc(&stats.baseline),
        esc(&stats.candidate),
        stats.alpha.value(),
        meta.insts,
        meta.seed,
        meta.seeds,
        stats.n,
        stats.saved,
        meta.workers,
        meta.wall_seconds,
        compare_digest(stats),
        wins,
        losses,
        ties,
        deltas,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::Simulator;
    use malec_trace::benchmark_named;
    use malec_types::SimConfig;

    fn meta<'a>(spec_path: &'a str, segments: &'a [&'a str], seeds: u32) -> ReportMeta<'a> {
        ReportMeta {
            spec_path,
            scenario: "demo",
            segments,
            mtr_path: "demo.mtr",
            insts: 2_000,
            seed: 1,
            seeds,
            workers: 3,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn report_is_wellformed_and_escaped() {
        let gzip = benchmark_named("gzip").unwrap();
        let run = Simulator::new(SimConfig::malec()).run(&gzip, 2_000, 1);
        let cell = CellResult::new(run.clone(), &run);
        assert!(cell.replay_matches());
        let json = render(
            &meta("spec \"quoted\".toml", &["gzip"], 1),
            std::slice::from_ref(&cell),
        );
        assert!(json.contains("\\\"quoted\\\""), "escaping applied");
        assert!(json.contains("\"replay_matches_generator\": true"));
        assert!(json.contains("\"workers\": 3"));
        assert!(json.contains("\"seeds\": 1"));
        assert!(json.contains("\"cells_per_sec\": 2.000"));
        assert!(!json.contains("\"metrics\""), "no stats block for one seed");
        // Balanced braces/brackets (cheap well-formedness probe; the full
        // shape is exercised end-to-end by the CLI integration test).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn replicate_stats_render_as_parseable_metric_rows() {
        use malec_core::stats::{replicate_seed, ReplicateStats};
        let gzip = benchmark_named("gzip").unwrap();
        let sim = Simulator::new(SimConfig::malec());
        let reps: Vec<_> = (0..4)
            .map(|i| sim.run(&gzip, 2_000, replicate_seed(1, i)))
            .collect();
        let cell = CellResult::from_generated(reps[0].clone())
            .with_stats(ReplicateStats::from_replicates(&reps, 6));
        let json = render(&meta("inline", &["gzip"], 6), &[cell]);
        assert!(json.contains("\"seeds\": 6"));
        assert!(json.contains("\"replicates\": 4"));
        assert!(json.contains("\"replicates_saved\": 2"));
        let v = crate::json::parse(&json).expect("report stays valid JSON");
        let cells = v
            .get("cells")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        let ipc = cells[0]
            .get("metrics")
            .and_then(|m| m.get("ipc"))
            .expect("ipc metrics row");
        let mean = ipc
            .get("mean")
            .and_then(crate::json::Value::as_f64)
            .unwrap();
        let min = ipc.get("min").and_then(crate::json::Value::as_f64).unwrap();
        let max = ipc.get("max").and_then(crate::json::Value::as_f64).unwrap();
        assert!(min <= mean && mean <= max);
        assert!(ipc
            .get("ci95")
            .and_then(crate::json::Value::as_f64)
            .is_some());
    }

    #[test]
    fn compare_report_is_valid_json_with_delta_blocks() {
        use malec_core::compare::{Alpha, CompareStats};
        use malec_core::stats::replicate_seed;
        let gzip = benchmark_named("gzip").unwrap();
        let run =
            |cfg: SimConfig, r: u32| Simulator::new(cfg).run(&gzip, 2_000, replicate_seed(3, r));
        let base: Vec<_> = (0..4).map(|r| run(SimConfig::base1ldst(), r)).collect();
        let cand: Vec<_> = (0..4).map(|r| run(SimConfig::malec(), r)).collect();
        let stats = CompareStats::from_pairs(&base, &cand, 6, Alpha::Five);
        let meta = CompareReportMeta {
            spec_path: "inline",
            scenario: "demo \"q\"",
            segments: &["gzip"],
            insts: 2_000,
            seed: 3,
            seeds: 6,
            workers: 2,
            wall_seconds: 0.25,
        };
        let json = render_compare(&meta, &stats);
        let v = crate::json::parse(&json).expect("compare report stays valid JSON");
        assert_eq!(
            v.get("bench").and_then(crate::json::Value::as_str),
            Some("malec_compare")
        );
        assert_eq!(
            v.get("baseline").and_then(crate::json::Value::as_str),
            Some("Base1ldst")
        );
        assert_eq!(
            v.get("alpha").and_then(crate::json::Value::as_f64),
            Some(0.05)
        );
        let ipc = v
            .get("deltas")
            .and_then(|d| d.get("ipc"))
            .expect("ipc delta block");
        let delta = ipc
            .get("delta_mean")
            .and_then(crate::json::Value::as_f64)
            .expect("delta_mean");
        let b = ipc
            .get("baseline_mean")
            .and_then(crate::json::Value::as_f64)
            .unwrap();
        let c = ipc
            .get("candidate_mean")
            .and_then(crate::json::Value::as_f64)
            .unwrap();
        assert!((delta - (c - b)).abs() < 1e-6);
        assert!(ipc.get("ci").and_then(crate::json::Value::as_f64).is_some());
        assert!(ipc
            .get("verdict")
            .and_then(crate::json::Value::as_str)
            .is_some());
        // The digest field is the behavioral digest of the delta blocks.
        assert_eq!(
            v.get("digest").and_then(crate::json::Value::as_str),
            Some(format!("{:#018x}", malec_core::compare::compare_digest(&stats)).as_str())
        );
        // Meta that may differ across drivers stays outside the digest:
        // re-rendering under a different worker count keeps the digest.
        let other = render_compare(
            &CompareReportMeta {
                workers: 16,
                wall_seconds: 9.9,
                spec_path: "job:4",
                ..meta
            },
            &stats,
        );
        let ov = crate::json::parse(&other).expect("valid");
        assert_eq!(
            ov.get("digest").and_then(crate::json::Value::as_str),
            v.get("digest").and_then(crate::json::Value::as_str)
        );
    }

    #[test]
    fn mismatched_digests_are_reported() {
        let gzip = benchmark_named("gzip").unwrap();
        let a = Simulator::new(SimConfig::malec()).run(&gzip, 1_000, 1);
        let b = Simulator::new(SimConfig::malec()).run(&gzip, 1_000, 2);
        let cell = CellResult::new(a, &b);
        assert!(!cell.replay_matches());
        let json = render(&meta("s", &[], 1), &[cell]);
        assert!(json.contains("\"replay_matches_generator\": false"));
    }
}
