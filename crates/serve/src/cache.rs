//! The content-addressed result cache.
//!
//! Every simulation cell the service runs is a pure function: one
//! `(SimConfig, scenario, seed, horizon)` tuple maps to one [`RunSummary`],
//! bit for bit, forever — PRs 1–2 proved that with golden digests and
//! replay verification, and it is exactly the property that makes a result
//! cache *sound*. [`cache_key`] derives a 128-bit stable key from the tuple
//! (via [`malec_types::stable`]); [`ResultCache`] maps keys to summaries
//! and persists every insertion to a compact append-only log, so a
//! restarted server comes back warm.
//!
//! Log format (`MSRC` magic, little-endian):
//!
//! ```text
//! magic "MSRC"  version u8
//! record*:
//!   key   u128
//!   len   u32           — byte length of the summary encoding
//!   sum   u64           — FNV-1a-64 over key ‖ len ‖ body
//!   body  [u8; len]     — malec_core::digest::write_summary encoding
//! ```
//!
//! On open, the log is replayed into memory. Recovery salvages the
//! **longest valid prefix**: replay stops at the first record that is
//! short (a crash mid-append), fails its checksum (a flipped byte), or
//! does not decode, and the file is truncated there — every record before
//! the damage is kept, everything from it on is dropped with a warning.
//! Because each FNV-1a step is a bijection on the running state, any
//! single corrupted byte inside a record is guaranteed to change its
//! checksum, so a damaged record can never be served as a result. A log
//! with the wrong magic or version is still refused rather than silently
//! rebuilt — deleting a stale cache is an operator decision.
//!
//! Durability is a policy knob ([`FsyncPolicy`]): every append is written
//! and flushed synchronously (a crash of *this process* never loses an
//! acknowledged record), and `fsync` runs either per append (`always`) or
//! once at graceful shutdown (`on-close`, the default — an OS crash can
//! lose the page-cache tail, which recovery then truncates). A *failed*
//! append — disk error, or the [`cache.append.torn`](crate::fault)
//! failpoint — is rolled back in place (`set_len` to the last good byte)
//! so a live server's log never accumulates mid-file damage.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use malec_core::digest::{read_summary, summary_to_bytes};
use malec_core::RunSummary;
use malec_trace::Scenario;
use malec_types::stable::{StableHasher, StableKey};
use malec_types::SimConfig;

use crate::fault::{FaultAction, Faults};

const MAGIC: &[u8; 4] = b"MSRC";
const VERSION: u8 = 2;

/// Recovers a poisoned log guard: a panicking worker thread must never
/// wedge the cache log for the rest of the pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(seed, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// The per-record checksum: FNV-1a-64 over `key ‖ len ‖ body`.
fn record_sum(key: u128, body: &[u8]) -> u64 {
    let h = fnv64(FNV_OFFSET, &key.to_le_bytes());
    let h = fnv64(h, &(body.len() as u32).to_le_bytes());
    fnv64(h, body)
}

/// When the cache log reaches the platters, not just the page cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` once at graceful shutdown. Appends are still written and
    /// flushed synchronously, so a process crash loses nothing; an OS
    /// crash can lose the page-cache tail, which recovery truncates. The
    /// default.
    #[default]
    OnClose,
    /// `fsync` after every append: durable against power loss, at a
    /// per-record disk round trip.
    Always,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "on-close" | "onclose" => Ok(Self::OnClose),
            other => Err(format!(
                "unknown fsync policy `{other}` (want `always` or `on-close`)"
            )),
        }
    }
}

/// Version tag folded into every cache key. Bump when any [`StableKey`]
/// encoding (or the summary codec) changes, so persisted logs from older
/// encodings can never alias new keys. (v2: the replicate index joined the
/// key, so replicate cells can never collide with each other or with
/// legacy single-seed cells.)
const KEY_VERSION: u8 = 2;

/// Derives the stable 128-bit cache key of one simulation cell.
///
/// `seed` is the **base** seed of the submission and `replicate` the cell's
/// replicate index; the pair is folded (not the derived per-replicate
/// seed), so a legacy single-seed cell — always `(seed, 0)` — and every
/// replicate address distinct entries even under adversarial seed choices
/// (e.g. a base seed equal to another submission's derived replicate seed).
pub fn cache_key(
    config: &SimConfig,
    scenario: &Scenario,
    insts: u64,
    seed: u64,
    replicate: u32,
) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(KEY_VERSION);
    config.fold(&mut h);
    scenario.fold(&mut h);
    h.write_u64(insts);
    h.write_u64(seed);
    replicate.fold(&mut h);
    h.finish()
}

/// Running cache counters, served by `GET /v1/cache/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Entries replayed from the persisted log at open.
    pub loaded: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (each one becomes a simulation).
    pub misses: u64,
    /// Cells that attached to an identical in-flight simulation instead of
    /// starting their own (the scheduler reports these).
    pub coalesced: u64,
    /// Bytes appended to the log over this process lifetime.
    pub bytes_appended: u64,
}

/// The log file plus the high-water mark of its last known-good record
/// boundary — the rollback point for failed appends.
#[derive(Debug)]
struct AppendFile {
    file: File,
    good_len: u64,
}

/// A shareable append handle to the cache log, locked independently of the
/// in-memory map: the scheduler serializes a fresh summary and appends it
/// **outside** the map mutex, so a disk flush never blocks concurrent
/// claim-step lookups (or the stats endpoint).
#[derive(Clone, Debug)]
pub struct LogAppender {
    inner: Arc<Mutex<AppendFile>>,
    fsync: FsyncPolicy,
    faults: Arc<Faults>,
}

impl LogAppender {
    /// Appends one record and flushes (a crash after `append` returns must
    /// not lose the record). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log file. A failed append — a real
    /// short write, or the `cache.append.torn` failpoint — is rolled back
    /// to the last good record boundary before the error returns, so the
    /// live log never carries mid-file damage into later appends.
    pub fn append(&self, key: u128, summary: &RunSummary) -> io::Result<u64> {
        let body = summary_to_bytes(summary);
        let mut rec = Vec::with_capacity(RECORD_HEADER + body.len());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&record_sum(key, &body).to_le_bytes());
        rec.extend_from_slice(&body);

        let mut log = lock(&self.inner);
        let written = match self.faults.check("cache.append.torn") {
            Some(FaultAction::Torn { keep }) => {
                let keep = (keep as usize).min(rec.len());
                log.file.write_all(&rec[..keep]).and_then(|()| {
                    Err(io::Error::other(
                        "injected torn append (failpoint cache.append.torn)",
                    ))
                })
            }
            _ => log.file.write_all(&rec),
        };
        match written {
            Ok(()) => {
                if self.fsync == FsyncPolicy::Always {
                    log.file.sync_data()?;
                }
                log.good_len += rec.len() as u64;
                Ok(rec.len() as u64)
            }
            Err(e) => {
                // Roll the torn bytes back; best-effort — if even the
                // truncate fails, reopen-time recovery still salvages the
                // prefix before the damage.
                let good = log.good_len;
                let _ = log
                    .file
                    .set_len(good)
                    .and_then(|()| log.file.seek(SeekFrom::Start(good)));
                Err(e)
            }
        }
    }

    /// Forces the log to stable storage (`fsync`). Graceful shutdown calls
    /// this regardless of policy; `FsyncPolicy::Always` makes it a no-op.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync(&self) -> io::Result<()> {
        lock(&self.inner).file.sync_all()
    }
}

/// The in-memory map plus its append-only persistence.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u128, Arc<RunSummary>>,
    log: Option<LogAppender>,
    path: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// A purely in-memory cache (no persistence).
    pub fn in_memory() -> Self {
        Self {
            map: HashMap::new(),
            log: None,
            path: None,
            stats: CacheStats::default(),
        }
    }

    /// Opens (or creates) a persisted cache at `path` with the default
    /// durability policy and no fault injection — see
    /// [`open_with`](Self::open_with).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` if the file exists but
    /// is not a cache log of the supported version.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with(path, FsyncPolicy::default(), Faults::disarmed())
    }

    /// Opens (or creates) a persisted cache at `path`, replaying any
    /// existing log into memory. Recovery keeps the longest valid record
    /// prefix: the first short, checksum-failing, or undecodable record
    /// stops the replay and the file is truncated there (a warning names
    /// the byte offset and what was dropped).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` if the file exists but
    /// is not a cache log of the supported version (wrong magic/version is
    /// *refused*, never auto-rebuilt).
    pub fn open_with(path: &Path, fsync: FsyncPolicy, faults: Arc<Faults>) -> io::Result<Self> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut map = HashMap::new();
        let mut good_end = (MAGIC.len() + 1) as u64;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            file.write_all(MAGIC)?;
            file.write_all(&[VERSION])?;
        } else {
            {
                let mut reader = BufReader::new(&mut file);
                let mut header = [0u8; 5];
                reader.read_exact(&mut header).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: not a cache log (short header)", path.display()),
                    )
                })?;
                if &header[..4] != MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: bad cache-log magic", path.display()),
                    ));
                }
                if header[4] != VERSION {
                    return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: cache-log version {} unsupported (want {VERSION}); delete it to rebuild",
                        path.display(),
                        header[4]
                    ),
                ));
                }
                loop {
                    match read_record(&mut reader) {
                        Ok(Some((key, summary, len))) => {
                            map.insert(key, Arc::new(summary));
                            good_end += len;
                        }
                        // Clean EOF at a record boundary: the log is good.
                        Ok(None) => break,
                        // Damage — a record cut short by a crash
                        // mid-append, a checksum-failing flipped byte, or
                        // an undecodable body. Salvage the valid prefix,
                        // truncate the rest: a corrupt record must never
                        // be served, and the records before it are known
                        // good (each carries its own checksum).
                        Err(e) => {
                            let dropped = file_len.saturating_sub(good_end);
                            eprintln!(
                                "malec-serve: cache log {}: {e} at byte {good_end}; \
                                 keeping {} recovered entr{}, dropping {dropped} damaged byte{}",
                                path.display(),
                                map.len(),
                                if map.len() == 1 { "y" } else { "ies" },
                                if dropped == 1 { "" } else { "s" },
                            );
                            break;
                        }
                    }
                }
            }
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        let stats = CacheStats {
            entries: map.len() as u64,
            loaded: map.len() as u64,
            ..CacheStats::default()
        };
        Ok(Self {
            map,
            log: Some(LogAppender {
                inner: Arc::new(Mutex::new(AppendFile {
                    file,
                    good_len: good_end,
                })),
                fsync,
                faults,
            }),
            path: Some(path.to_owned()),
            stats,
        })
    }

    /// Looks `key` up, counting a hit. A `None` result is **not** counted
    /// here: the scheduler distinguishes a true miss (a simulation starts —
    /// [`count_miss`](Self::count_miss)) from attaching to an identical
    /// in-flight simulation ([`count_coalesced`](Self::count_coalesced)).
    pub fn lookup(&mut self, key: u128) -> Option<Arc<RunSummary>> {
        let hit = self.map.get(&key).map(Arc::clone);
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Counts one true miss (a cell that goes on to simulate).
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts a summary into the in-memory map. Persistence is separate:
    /// append through [`appender`](Self::appender) (outside the map lock)
    /// and record the outcome with [`note_appended`](Self::note_appended),
    /// or use [`insert_persist`](Self::insert_persist) where lock splitting
    /// does not matter.
    pub fn insert(&mut self, key: u128, summary: Arc<RunSummary>) {
        if self.map.insert(key, summary).is_none() {
            self.stats.entries += 1;
        }
    }

    /// The log's append handle, if this cache is persisted.
    pub fn appender(&self) -> Option<LogAppender> {
        self.log.clone()
    }

    /// Records bytes a [`LogAppender::append`] wrote (the appender runs
    /// outside this struct's lock, so the stat arrives separately).
    pub fn note_appended(&mut self, bytes: u64) {
        self.stats.bytes_appended += bytes;
    }

    /// [`insert`](Self::insert) plus a synchronous log append — the
    /// convenience path for tests and single-threaded embedders.
    ///
    /// # Errors
    ///
    /// Propagates log-append I/O errors (the in-memory insert still took
    /// effect).
    pub fn insert_persist(&mut self, key: u128, summary: Arc<RunSummary>) -> io::Result<()> {
        self.insert(key, Arc::clone(&summary));
        if let Some(log) = self.appender() {
            let bytes = log.append(key, &summary)?;
            self.note_appended(bytes);
        }
        Ok(())
    }

    /// Counts one coalesced cell (see [`CacheStats::coalesced`]).
    pub fn count_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Forces the persisted log to stable storage (no-op for an in-memory
    /// cache). Graceful shutdown calls this so `FsyncPolicy::OnClose` gets
    /// its one `fsync`.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync(&self) -> io::Result<()> {
        match &self.log {
            Some(log) => log.sync(),
            None => Ok(()),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The log path, if persisted.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Upper bound on one record's body. A summary encodes to well under a
/// kilobyte; a length beyond this is log corruption, and bounding it keeps
/// a corrupt length field from demanding a multi-gigabyte allocation at
/// open (the torn-tail recovery then kicks in instead).
const MAX_RECORD: usize = 1024 * 1024;

/// Bytes before a record's body: key `u128`, length `u32`, checksum `u64`.
const RECORD_HEADER: usize = 16 + 4 + 8;

/// Reads one log record, verifying its checksum; `Ok(None)` on clean EOF
/// before the key. Every error return means "damage starts here" to the
/// recovery loop — a short read, an absurd length, a checksum mismatch,
/// and an undecodable body are all the same cut point.
fn read_record(r: &mut impl Read) -> io::Result<Option<(u128, RunSummary, u64)>> {
    let mut key = [0u8; 16];
    match r.read_exact(&mut key) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_RECORD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache record length {len} exceeds {MAX_RECORD}"),
        ));
    }
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let sum = u64::from_le_bytes(sum);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let key = u128::from_le_bytes(key);
    let want = record_sum(key, &body);
    if sum != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache record checksum mismatch (stored {sum:#018x}, computed {want:#018x})"),
        ));
    }
    let summary = read_summary(&mut body.as_slice())?;
    Ok(Some((key, summary, (RECORD_HEADER + len) as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::digest::digest;
    use malec_core::{ScenarioSource, Simulator};
    use malec_trace::scenario::preset_named;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malec_serve_cache_{name}_{}", std::process::id()))
    }

    fn sample(seed: u64) -> RunSummary {
        let scenario = preset_named("store_burst").expect("preset");
        Simulator::new(SimConfig::malec())
            .run_source(&ScenarioSource::Scenario(scenario), 2_000, seed)
            .expect("generator sources cannot fail")
    }

    #[test]
    fn keys_separate_config_scenario_seed_horizon_and_replicate() {
        let s1 = preset_named("store_burst").expect("preset");
        let s2 = preset_named("tlb_thrash").expect("preset");
        let base = cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0);
        assert_eq!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::base1ldst(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s2, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 2_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 2, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 1));
    }

    #[test]
    fn replicate_cells_never_collide_with_legacy_or_each_other() {
        use malec_trace::seed::replicate_seed;
        let s = preset_named("store_burst").expect("preset");
        let cfg = SimConfig::malec();
        // Adversarial base seed: another submission's derived replicate
        // seed. Folding (base, replicate) instead of the derived seed keeps
        // the cells distinct.
        let derived = replicate_seed(1, 3);
        assert_ne!(
            cache_key(&cfg, &s, 1_000, 1, 3),
            cache_key(&cfg, &s, 1_000, derived, 0),
            "replicate 3 of base 1 must not alias a legacy cell at the derived seed"
        );
        let keys: Vec<u128> = (0..16).map(|r| cache_key(&cfg, &s, 1_000, 1, r)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "replicates of one cell must key distinctly");
            }
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::in_memory();
        let key = 42u128;
        assert!(cache.lookup(key).is_none());
        cache.count_miss(); // the scheduler counts the miss when it claims
        cache
            .insert_persist(key, Arc::new(sample(1)))
            .expect("insert");
        assert!(cache.lookup(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn persisted_cache_survives_reopen_bit_for_bit() {
        let path = tmp("reopen");
        std::fs::remove_file(&path).ok();
        let a = sample(7);
        let b = sample(8);
        {
            let mut cache = ResultCache::open(&path).expect("open fresh");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(b.clone()))
                .expect("insert");
        }
        let mut cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2);
        let got_a = cache.lookup(1).expect("a persisted");
        let got_b = cache.lookup(2).expect("b persisted");
        assert_eq!(digest(&got_a), digest(&a), "lossless persistence");
        assert_eq!(digest(&got_b), digest(&b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_log_stays_appendable() {
        let path = tmp("truncated");
        std::fs::remove_file(&path).ok();
        let a = sample(9);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(sample(10)))
                .expect("insert");
        }
        // Simulate a crash mid-append: cut into the second record.
        let full = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(full - 10).expect("truncate");
        drop(f);
        {
            let mut cache = ResultCache::open(&path).expect("reopen survives");
            assert_eq!(cache.stats().loaded, 1, "only the complete record");
            assert!(cache.lookup(1).is_some());
            assert!(cache.lookup(2).is_none());
            cache
                .insert_persist(3, Arc::new(sample(11)))
                .expect("append works");
        }
        let cache = ResultCache::open(&path).expect("reopen again");
        assert_eq!(cache.stats().loaded, 2, "entry 1 + appended entry 3");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a cache log").expect("write");
        let err = ResultCache::open(&path).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_mid_log_salvages_the_prefix() {
        let path = tmp("flip");
        std::fs::remove_file(&path).ok();
        let a = sample(21);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(sample(22)))
                .expect("insert");
            cache
                .insert_persist(3, Arc::new(sample(23)))
                .expect("insert");
        }
        // Flip one byte inside the SECOND record's body. Records are
        // equal-sized here (same scenario shape), so locate it by arithmetic.
        let mut bytes = std::fs::read(&path).expect("read");
        let record = (bytes.len() - 5) / 3;
        let victim = 5 + record + RECORD_HEADER + record / 2;
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupt log");

        let mut cache = ResultCache::open(&path).expect("recovery, not refusal");
        assert_eq!(cache.stats().loaded, 1, "records 2 and 3 dropped");
        let got = cache.lookup(1).expect("record 1 salvaged");
        assert_eq!(digest(&got), digest(&a), "salvaged record is intact");
        assert!(cache.lookup(2).is_none(), "damaged record never served");
        assert!(cache.lookup(3).is_none(), "records behind damage dropped");
        cache
            .insert_persist(4, Arc::new(sample(24)))
            .expect("truncated log stays appendable");
        drop(cache);
        let cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2, "entry 1 + appended entry 4");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_append_rolls_back_and_log_stays_valid() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let faults = Faults::disarmed();
        faults.arm("cache.append.torn", 2, Some(11));
        {
            let mut cache =
                ResultCache::open_with(&path, FsyncPolicy::Always, faults.clone()).expect("open");
            cache
                .insert_persist(1, Arc::new(sample(31)))
                .expect("first append clean");
            let err = cache
                .insert_persist(2, Arc::new(sample(32)))
                .expect_err("second append torn");
            assert!(err.to_string().contains("injected torn append"), "{err}");
            // In-memory entry survives the failed persist; the log rolled
            // the 11 torn bytes back in place, so the next append lands on
            // a clean boundary.
            assert!(cache.lookup(2).is_some());
            cache
                .insert_persist(3, Arc::new(sample(33)))
                .expect("append after rollback");
        }
        assert_eq!(faults.fired("cache.append.torn"), 1);
        let mut cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2, "torn record 2 was rolled back");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).is_none(), "torn record is not on disk");
        assert!(cache.lookup(3).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("on-close".parse::<FsyncPolicy>(), Ok(FsyncPolicy::OnClose));
        assert_eq!("onclose".parse::<FsyncPolicy>(), Ok(FsyncPolicy::OnClose));
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::OnClose);
    }

    #[test]
    fn single_byte_flips_always_change_the_checksum() {
        // The bijectivity argument behind the checksum: with identical
        // subsequent bytes, flipping any single body byte flips the sum.
        let body: Vec<u8> = (0u16..200).map(|i| (i % 251) as u8).collect();
        let base = record_sum(99, &body);
        for i in 0..body.len() {
            for bit in 0..8 {
                let mut flipped = body.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    record_sum(99, &flipped),
                    base,
                    "flip at byte {i} bit {bit} must change the sum"
                );
            }
        }
    }
}
