//! The content-addressed result cache.
//!
//! Every simulation cell the service runs is a pure function: one
//! `(SimConfig, scenario, seed, horizon)` tuple maps to one [`RunSummary`],
//! bit for bit, forever — PRs 1–2 proved that with golden digests and
//! replay verification, and it is exactly the property that makes a result
//! cache *sound*. [`cache_key`] derives a 128-bit stable key from the tuple
//! (via [`malec_types::stable`]); [`ResultCache`] maps keys to summaries
//! and persists every insertion to a compact append-only log, so a
//! restarted server comes back warm.
//!
//! Log format (`MSRC` magic, little-endian):
//!
//! ```text
//! magic "MSRC"  version u8
//! record*:
//!   key   u128
//!   ver   u8            — the KEY_VERSION the record was written under
//!   len   u32           — byte length of the summary encoding
//!   sum   u64           — FNV-1a-64 over key ‖ ver ‖ len ‖ body
//!   body  [u8; len]     — malec_core::digest::write_summary encoding
//! ```
//!
//! On open, the log is replayed into memory. Recovery salvages the
//! **longest valid prefix**: replay stops at the first record that is
//! short (a crash mid-append), fails its checksum (a flipped byte), or
//! does not decode, and the file is truncated there — every record before
//! the damage is kept, everything from it on is dropped with a warning.
//! Because each FNV-1a step is a bijection on the running state, any
//! single corrupted byte inside a record is guaranteed to change its
//! checksum, so a damaged record can never be served as a result. A log
//! with the wrong magic or version is still refused rather than silently
//! rebuilt — deleting a stale cache is an operator decision.
//!
//! Replay is **last-record-wins**: a duplicate-key append (a resubmission
//! racing a failed-append rollback, or a compaction racing a pending
//! append) is legal on disk, and reopening keeps only the newest record
//! per key. Records written under a superseded `KEY_VERSION` are skipped
//! without decoding — their keys can never be looked up again. Both kinds
//! of superseded record are *dead bytes*: they stay on disk until
//! [`compact`](ResultCache::compact) rewrites the log with only the live
//! record set (atomically: write `<path>.compact`, fsync, rename — a crash
//! at any point leaves either the old log intact or the new log complete).
//!
//! The in-memory map is LRU-ordered and optionally size-bounded
//! ([`with_max_bytes`](ResultCache::with_max_bytes)): past the cap, the
//! least-recently-used entries are dropped from memory immediately (and
//! from disk at the next compaction), so a long-lived server holds a
//! steady-state footprint. The live record set can also be streamed in log
//! format ([`export_live`](ResultCache::export_live) /
//! [`ingest`](ResultCache::ingest)) — the `/v1/cache/sync` wire format a
//! fresh peer warms up from, verified record by record with the same
//! per-record checksums.
//!
//! Durability is a policy knob ([`FsyncPolicy`]): every append is written
//! and flushed synchronously (a crash of *this process* never loses an
//! acknowledged record), and `fsync` runs either per append (`always`) or
//! once at graceful shutdown (`on-close`, the default — an OS crash can
//! lose the page-cache tail, which recovery then truncates). A *failed*
//! append — disk error, or the [`cache.append.torn`](crate::fault)
//! failpoint — is rolled back in place (`set_len` to the last good byte)
//! so a live server's log never accumulates mid-file damage.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use crate::sync::lock;

use malec_core::digest::{read_summary, summary_to_bytes};
use malec_core::RunSummary;
use malec_trace::Scenario;
use malec_types::stable::{StableHasher, StableKey};
use malec_types::SimConfig;

use crate::fault::{FaultAction, Faults};

const MAGIC: &[u8; 4] = b"MSRC";
const VERSION: u8 = 3;

/// Bytes of the log header (magic + version).
const HEADER_LEN: u64 = 5;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(seed, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// The per-record checksum: FNV-1a-64 over `key ‖ ver ‖ len ‖ body`.
fn record_sum(key: u128, ver: u8, body: &[u8]) -> u64 {
    let h = fnv64(FNV_OFFSET, &key.to_le_bytes());
    let h = fnv64(h, &[ver]);
    let h = fnv64(h, &(body.len() as u32).to_le_bytes());
    fnv64(h, body)
}

/// When the cache log reaches the platters, not just the page cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` once at graceful shutdown. Appends are still written and
    /// flushed synchronously, so a process crash loses nothing; an OS
    /// crash can lose the page-cache tail, which recovery truncates. The
    /// default.
    #[default]
    OnClose,
    /// `fsync` after every append: durable against power loss, at a
    /// per-record disk round trip.
    Always,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "on-close" | "onclose" => Ok(Self::OnClose),
            other => Err(format!(
                "unknown fsync policy `{other}` (want `always` or `on-close`)"
            )),
        }
    }
}

/// Version tag folded into every cache key **and** written into every log
/// record. Bump when any [`StableKey`] encoding (or the summary codec)
/// changes, so persisted logs from older encodings can never alias new
/// keys — replay skips records carrying a superseded tag without decoding
/// them, and compaction drops them from disk. (v2: the replicate index
/// joined the key, so replicate cells can never collide with each other or
/// with legacy single-seed cells.)
const KEY_VERSION: u8 = 2;

/// Derives the stable 128-bit cache key of one simulation cell.
///
/// `seed` is the **base** seed of the submission and `replicate` the cell's
/// replicate index; the pair is folded (not the derived per-replicate
/// seed), so a legacy single-seed cell — always `(seed, 0)` — and every
/// replicate address distinct entries even under adversarial seed choices
/// (e.g. a base seed equal to another submission's derived replicate seed).
pub fn cache_key(
    config: &SimConfig,
    scenario: &Scenario,
    insts: u64,
    seed: u64,
    replicate: u32,
) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(KEY_VERSION);
    config.fold(&mut h);
    scenario.fold(&mut h);
    h.write_u64(insts);
    h.write_u64(seed);
    replicate.fold(&mut h);
    h.finish()
}

/// Running cache counters, served by `GET /v1/cache/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Entries replayed from the persisted log at open.
    pub loaded: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (each one becomes a simulation).
    pub misses: u64,
    /// Cells that attached to an identical in-flight simulation instead of
    /// starting their own (the scheduler reports these).
    pub coalesced: u64,
    /// Records fetched from an owning peer's cache instead of simulated
    /// locally (sharded serving — the scheduler and the gather path report
    /// these).
    pub fetched: u64,
    /// Bytes appended to the log over this process lifetime.
    pub bytes_appended: u64,
    /// The log's current on-disk length (header + every record, live or
    /// dead) — `good_len` at open plus appends, reset by compaction. This
    /// is the number the old `bytes_appended` counter was mistaken for: a
    /// warm-restarted server reports the real file size here, not ~0.
    pub log_bytes: u64,
    /// Bytes of the log occupied by **live** records (one per resident
    /// key). `log_bytes - 5 - live_bytes` is the dead-record delta that
    /// drives the compaction trigger.
    pub live_bytes: u64,
    /// Entries evicted by the size cap over this process lifetime.
    pub evicted: u64,
    /// Compactions completed over this process lifetime.
    pub compactions: u64,
}

/// The log file plus the high-water mark of its last known-good record
/// boundary — the rollback point for failed appends.
#[derive(Debug)]
struct AppendFile {
    file: File,
    good_len: u64,
}

/// A shareable append handle to the cache log, locked independently of the
/// in-memory map: the scheduler serializes a fresh summary and appends it
/// **outside** the map mutex, so a disk flush never blocks concurrent
/// claim-step lookups (or the stats endpoint).
#[derive(Clone, Debug)]
pub struct LogAppender {
    inner: Arc<Mutex<AppendFile>>,
    fsync: FsyncPolicy,
    faults: Arc<Faults>,
}

impl LogAppender {
    /// Appends one record and flushes (a crash after `append` returns must
    /// not lose the record). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log file. A failed append — a real
    /// short write, or the `cache.append.torn` failpoint — is rolled back
    /// to the last good record boundary before the error returns, so the
    /// live log never carries mid-file damage into later appends.
    pub fn append(&self, key: u128, summary: &RunSummary) -> io::Result<u64> {
        let rec = encode_record(key, summary);

        let mut log = lock(&self.inner);
        let written = match self.faults.check("cache.append.torn") {
            Some(FaultAction::Torn { keep }) => {
                let keep = (keep as usize).min(rec.len());
                // analyze: allow(panic-surface) keep is clamped to rec.len() on the line above
                log.file.write_all(&rec[..keep]).and_then(|()| {
                    Err(io::Error::other(
                        "injected torn append (failpoint cache.append.torn)",
                    ))
                })
            }
            _ => log.file.write_all(&rec),
        };
        match written {
            Ok(()) => {
                if self.fsync == FsyncPolicy::Always {
                    log.file.sync_data()?;
                }
                log.good_len += rec.len() as u64;
                Ok(rec.len() as u64)
            }
            Err(e) => {
                // Roll the torn bytes back; best-effort — if even the
                // truncate fails, reopen-time recovery still salvages the
                // prefix before the damage.
                let good = log.good_len;
                let _ = log
                    .file
                    .set_len(good)
                    .and_then(|()| log.file.seek(SeekFrom::Start(good)));
                Err(e)
            }
        }
    }

    /// Forces the log to stable storage (`fsync`). Graceful shutdown calls
    /// this regardless of policy; `FsyncPolicy::Always` makes it a no-op.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync(&self) -> io::Result<()> {
        lock(&self.inner).file.sync_all()
    }
}

/// One resident entry: the summary plus its on-disk record size and its
/// LRU stamp (the key into the recency index).
#[derive(Debug)]
struct Entry {
    summary: Arc<RunSummary>,
    /// Full record size on disk (header + body), for live-byte accounting.
    bytes: u64,
    /// LRU stamp; larger = more recently used.
    seq: u64,
}

/// What one completed compaction did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Log length before (header + live + dead records).
    pub bytes_before: u64,
    /// Log length after (header + live records only).
    pub bytes_after: u64,
    /// Live records written to the compacted log.
    pub records: u64,
}

/// What one sync-stream ingestion saw.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Checksum-verified records received.
    pub records: u64,
    /// Stream bytes consumed (header + verified records).
    pub bytes: u64,
    /// Records actually inserted (the rest were already resident).
    pub inserted: u64,
    /// Why the stream stopped early, if it broke mid-record — the verified
    /// prefix before the damage is kept (the receive side of the same
    /// longest-valid-prefix rule recovery uses).
    pub damaged: Option<String>,
}

/// The in-memory map plus its append-only persistence.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u128, Entry>,
    /// Recency index: LRU stamp → key, oldest first.
    lru: BTreeMap<u64, u128>,
    /// Monotone LRU clock.
    clock: u64,
    /// Live-byte cap; past it the LRU tail is evicted from memory.
    max_bytes: Option<u64>,
    log: Option<LogAppender>,
    path: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// A purely in-memory cache (no persistence).
    pub fn in_memory() -> Self {
        Self {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            max_bytes: None,
            log: None,
            path: None,
            stats: CacheStats::default(),
        }
    }

    /// Opens (or creates) a persisted cache at `path` with the default
    /// durability policy and no fault injection — see
    /// [`open_with`](Self::open_with).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` if the file exists but
    /// is not a cache log of the supported version.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with(path, FsyncPolicy::default(), Faults::disarmed())
    }

    /// Opens (or creates) a persisted cache at `path`, replaying any
    /// existing log into memory. Recovery keeps the longest valid record
    /// prefix: the first short, checksum-failing, or undecodable record
    /// stops the replay and the file is truncated there (a warning names
    /// the byte offset and what was dropped). Duplicate-key records replay
    /// last-record-wins; records under a superseded `KEY_VERSION` are
    /// skipped. A stale `<path>.compact` temp (a crash mid-compaction) is
    /// deleted — the old log it would have replaced is still intact.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` if the file exists but
    /// is not a cache log of the supported version (wrong magic/version is
    /// *refused*, never auto-rebuilt).
    pub fn open_with(path: &Path, fsync: FsyncPolicy, faults: Arc<Faults>) -> io::Result<Self> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        // A leftover compaction temp means a crash landed between writing
        // it and renaming it over the log. The rename never happened, so
        // the log is the authority; the temp is garbage.
        let stale = compact_path(path);
        if stale.exists() && std::fs::remove_file(&stale).is_ok() {
            eprintln!(
                "malec-serve: removed stale compaction temp {} (crash mid-compaction; the log is intact)",
                stale.display()
            );
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut cache = Self::in_memory();
        let mut good_end = HEADER_LEN;
        let mut duplicates = 0u64;
        let mut superseded = 0u64;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            file.write_all(&log_header())?;
        } else {
            {
                let mut reader = BufReader::new(&mut file);
                let mut header = [0u8; HEADER_LEN as usize];
                reader.read_exact(&mut header).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: not a cache log (short header)", path.display()),
                    )
                })?;
                let [magic @ .., version] = header;
                if &magic != MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: bad cache-log magic", path.display()),
                    ));
                }
                if version != VERSION {
                    return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: cache-log version {version} unsupported (want {VERSION}); delete it to rebuild",
                        path.display(),
                    ),
                ));
                }
                loop {
                    match read_record(&mut reader) {
                        Ok(RawRecord::Live(key, summary, len)) => {
                            // Last-record-wins: a newer record for a key
                            // already replayed supersedes it (the older
                            // copy becomes dead bytes).
                            if cache.place(key, Arc::new(*summary), len) {
                                duplicates += 1;
                            }
                            good_end += len;
                        }
                        // A valid record under a superseded KEY_VERSION:
                        // its key can never be looked up again. Skip it
                        // (dead bytes), keep replaying.
                        Ok(RawRecord::Stale(len)) => {
                            superseded += 1;
                            good_end += len;
                        }
                        // Clean EOF at a record boundary: the log is good.
                        Ok(RawRecord::Eof) => break,
                        // Damage — a record cut short by a crash
                        // mid-append, a checksum-failing flipped byte, or
                        // an undecodable body. Salvage the valid prefix,
                        // truncate the rest: a corrupt record must never
                        // be served, and the records before it are known
                        // good (each carries its own checksum).
                        Err(e) => {
                            let dropped = file_len.saturating_sub(good_end);
                            eprintln!(
                                "malec-serve: cache log {}: {e} at byte {good_end}; \
                                 keeping {} recovered entr{}, dropping {dropped} damaged byte{}",
                                path.display(),
                                cache.map.len(),
                                if cache.map.len() == 1 { "y" } else { "ies" },
                                if dropped == 1 { "" } else { "s" },
                            );
                            break;
                        }
                    }
                }
            }
            file.set_len(good_end)?;
        }
        if duplicates + superseded > 0 {
            eprintln!(
                "malec-serve: cache log {}: {duplicates} superseded duplicate(s) and \
                 {superseded} stale-key-version record(s) skipped (dead bytes until compaction)",
                path.display(),
            );
        }
        file.seek(SeekFrom::Start(good_end))?;
        cache.stats.entries = cache.map.len() as u64;
        cache.stats.loaded = cache.map.len() as u64;
        cache.stats.log_bytes = good_end;
        cache.log = Some(LogAppender {
            inner: Arc::new(Mutex::new(AppendFile {
                file,
                good_len: good_end,
            })),
            fsync,
            faults,
        });
        cache.path = Some(path.to_owned());
        Ok(cache)
    }

    /// Caps the live set at `max` bytes (record sizes, not summaries),
    /// enforcing the cap immediately — a log replayed past the cap evicts
    /// its least-recently-written tail right away. `None` lifts the cap.
    #[must_use]
    pub fn with_max_bytes(mut self, max: Option<u64>) -> Self {
        self.max_bytes = max;
        self.enforce_cap();
        self
    }

    /// Looks `key` up, counting a hit and touching its recency (a served
    /// entry is the last the size cap evicts). A `None` result is **not**
    /// counted here: the scheduler distinguishes a true miss (a simulation
    /// starts — [`count_miss`](Self::count_miss)) from attaching to an
    /// identical in-flight simulation
    /// ([`count_coalesced`](Self::count_coalesced)).
    pub fn lookup(&mut self, key: u128) -> Option<Arc<RunSummary>> {
        let hit = self.map.get(&key).map(|e| Arc::clone(&e.summary));
        if hit.is_some() {
            self.stats.hits += 1;
            self.touch(key);
        }
        hit
    }

    /// Counts one true miss (a cell that goes on to simulate).
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Counts one peer-fetched record (see [`CacheStats::fetched`]).
    pub fn count_fetched(&mut self) {
        self.stats.fetched += 1;
    }

    /// Whether `key` is resident — without counting a hit or touching the
    /// entry's recency (unlike [`lookup`](Self::lookup)).
    pub fn contains(&self, key: u128) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts a summary into the in-memory map (replacing any entry the
    /// key already had) and enforces the size cap — the just-inserted
    /// entry is never the one evicted, so the cap can be exceeded by at
    /// most one record. Persistence is separate: append through
    /// [`appender`](Self::appender) (outside the map lock) and record the
    /// outcome with [`note_appended`](Self::note_appended), or use
    /// [`insert_persist`](Self::insert_persist) where lock splitting does
    /// not matter.
    pub fn insert(&mut self, key: u128, summary: Arc<RunSummary>) {
        let bytes = (RECORD_HEADER + summary_to_bytes(&summary).len()) as u64;
        if !self.place(key, summary, bytes) {
            self.stats.entries += 1;
        }
        self.enforce_cap();
    }

    /// Places one entry, replacing any previous record for the key and
    /// keeping the live-byte sum exact. Returns whether the key was
    /// already resident. Shared by [`insert`](Self::insert) and the replay
    /// loop (which must dedupe without counting `entries` twice).
    fn place(&mut self, key: u128, summary: Arc<RunSummary>, bytes: u64) -> bool {
        self.clock += 1;
        let entry = Entry {
            summary,
            bytes,
            seq: self.clock,
        };
        self.lru.insert(self.clock, key);
        self.stats.live_bytes += bytes;
        match self.map.insert(key, entry) {
            Some(old) => {
                self.lru.remove(&old.seq);
                self.stats.live_bytes -= old.bytes;
                true
            }
            None => false,
        }
    }

    /// Marks `key` most-recently-used.
    fn touch(&mut self, key: u128) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.map.get_mut(&key) {
            self.lru.remove(&e.seq);
            e.seq = clock;
            self.lru.insert(clock, key);
        }
    }

    /// Evicts LRU-first until the live set fits the cap. The newest entry
    /// is never evicted (so an insert always lands, and the cap is
    /// exceeded by at most that one record). Evicted keys leave memory
    /// now; their disk records become dead bytes until compaction.
    fn enforce_cap(&mut self) {
        let Some(max) = self.max_bytes else { return };
        while self.stats.live_bytes > max && self.map.len() > 1 {
            // analyze: allow(panic-surface) loop guard holds map.len() > 1, and lru mirrors map
            let (&seq, &key) = self.lru.iter().next().expect("non-empty map has an LRU");
            self.lru.remove(&seq);
            // analyze: allow(panic-surface) every lru entry is inserted alongside its map entry
            let old = self.map.remove(&key).expect("LRU entries are resident");
            self.stats.live_bytes -= old.bytes;
            self.stats.entries -= 1;
            self.stats.evicted += 1;
        }
    }

    /// The log's append handle, if this cache is persisted.
    pub fn appender(&self) -> Option<LogAppender> {
        self.log.clone()
    }

    /// Records bytes a [`LogAppender::append`] wrote (the appender runs
    /// outside this struct's lock, so the stat arrives separately).
    pub fn note_appended(&mut self, bytes: u64) {
        self.stats.bytes_appended += bytes;
        self.stats.log_bytes += bytes;
    }

    /// [`insert`](Self::insert) plus a synchronous log append — the
    /// convenience path for tests and single-threaded embedders.
    ///
    /// # Errors
    ///
    /// Propagates log-append I/O errors (the in-memory insert still took
    /// effect).
    pub fn insert_persist(&mut self, key: u128, summary: Arc<RunSummary>) -> io::Result<()> {
        self.insert(key, Arc::clone(&summary));
        if let Some(log) = self.appender() {
            let bytes = log.append(key, &summary)?;
            self.note_appended(bytes);
        }
        Ok(())
    }

    /// Counts one coalesced cell (see [`CacheStats::coalesced`]).
    pub fn count_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Bytes of the log occupied by dead records: duplicates superseded by
    /// a newer append, stale-`KEY_VERSION` records, and records whose keys
    /// were evicted from memory.
    pub fn dead_bytes(&self) -> u64 {
        self.stats
            .log_bytes
            .saturating_sub(HEADER_LEN)
            .saturating_sub(self.stats.live_bytes)
    }

    /// The dead fraction of the log's record payload (0.0 for an empty or
    /// in-memory cache) — the compaction trigger compares this against the
    /// `--compact-threshold` ratio.
    pub fn dead_ratio(&self) -> f64 {
        let payload = self.stats.log_bytes.saturating_sub(HEADER_LEN);
        if payload == 0 {
            return 0.0;
        }
        self.dead_bytes() as f64 / payload as f64
    }

    /// Rewrites the log to exactly the live record set — one record per
    /// resident key, LRU order (so a reopen reconstructs today's recency) —
    /// atomically: the new log is written to `<path>.compact`, fsynced,
    /// and renamed over the old one. A crash at any point leaves either
    /// the old log intact (rename never ran; the temp is deleted at next
    /// open) or the new log complete — never neither. Appends block for
    /// the duration (the appender lock is held), which is the point: the
    /// swap must not race a write to the old file.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for an in-memory cache; propagates I/O
    /// errors (including the `cache.compact.torn` failpoint, which tears
    /// the temp file mid-record and returns before the rename — the live
    /// log is untouched).
    pub fn compact(&mut self) -> io::Result<CompactOutcome> {
        let log = self.log.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "cache is in-memory; nothing to compact",
            )
        })?;
        // analyze: allow(panic-surface) self.log is Some (checked above), and log and path are set together
        let path = self.path.clone().expect("a persisted cache has a path");
        let tmp = compact_path(&path);
        let mut af = lock(&log.inner);
        let bytes_before = af.good_len;

        // The failpoint decides up front how many complete records the
        // "crash" lets through; the torn write below is what kill -9
        // mid-compaction leaves on disk.
        let tear_after = match log.faults.check("cache.compact.torn") {
            Some(FaultAction::Torn { keep }) => Some(keep),
            _ => None,
        };
        let mut out = File::create(&tmp)?;
        out.write_all(&log_header())?;
        let mut written = 0u64;
        for &key in self.lru.values() {
            // analyze: allow(panic-surface) lru values are exactly the resident map keys
            let rec = encode_record(key, &self.map[&key].summary);
            if tear_after == Some(written) {
                // analyze: allow(panic-surface) rec.len()/2 is always in bounds
                out.write_all(&rec[..rec.len() / 2])?;
                out.sync_all()?;
                return Err(io::Error::other(
                    "injected torn compaction (failpoint cache.compact.torn)",
                ));
            }
            out.write_all(&rec)?;
            written += 1;
        }
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp, &path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        af.file = file;
        af.good_len = len;
        self.stats.log_bytes = len;
        self.stats.compactions += 1;
        Ok(CompactOutcome {
            bytes_before,
            bytes_after: len,
            records: written,
        })
    }

    /// The live record set in log format (header + one record per
    /// resident key, LRU order) — the `/v1/cache/sync` response body. A
    /// receiver feeds it to [`ingest`](Self::ingest), which verifies every
    /// record's checksum before accepting it.
    pub fn export_live(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((HEADER_LEN + self.stats.live_bytes) as usize);
        out.extend_from_slice(&log_header());
        for &key in self.lru.values() {
            // analyze: allow(panic-surface) lru values are exactly the resident map keys
            out.extend_from_slice(&encode_record(key, &self.map[&key].summary));
        }
        out
    }

    /// A snapshot of the live set for chunked streaming: `(key, summary)`
    /// handles in LRU order (`Arc` clones, not encoded bytes), plus the
    /// exact byte length of the corresponding log stream (header + every
    /// record). The `/v1/cache/sync` handler encodes and writes chunk by
    /// chunk from this instead of materializing the whole byte body under
    /// the cache lock — summaries are immutable once inserted, so the
    /// handles stay a consistent snapshot after the lock is released.
    pub fn live_records(&self) -> (Vec<(u128, Arc<RunSummary>)>, u64) {
        let mut records = Vec::with_capacity(self.map.len());
        for &key in self.lru.values() {
            // analyze: allow(panic-surface) lru values are exactly the resident map keys
            records.push((key, Arc::clone(&self.map[&key].summary)));
        }
        (records, HEADER_LEN + self.stats.live_bytes)
    }

    /// Streams a log-format record set (an [`export_live`](Self::export_live)
    /// body) into this cache, verifying each record's checksum and
    /// persisting every record not already resident. Damage mid-stream
    /// keeps the verified prefix and reports it in
    /// [`SyncReport::damaged`] — the receive side of longest-valid-prefix
    /// recovery.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a stream that is not a cache log of the
    /// supported version; propagates local append errors.
    pub fn ingest(&mut self, r: &mut impl Read) -> io::Result<SyncReport> {
        check_stream_header(r)?;
        let mut report = SyncReport {
            bytes: HEADER_LEN,
            ..SyncReport::default()
        };
        loop {
            match read_record(r) {
                Ok(RawRecord::Live(key, summary, len)) => {
                    report.records += 1;
                    report.bytes += len;
                    if !self.map.contains_key(&key) {
                        self.insert_persist(key, Arc::new(*summary))?;
                        report.inserted += 1;
                    }
                }
                Ok(RawRecord::Stale(len)) => {
                    report.bytes += len;
                }
                Ok(RawRecord::Eof) => break,
                Err(e) => {
                    report.damaged = Some(e.to_string());
                    break;
                }
            }
        }
        Ok(report)
    }

    /// Forces the persisted log to stable storage (no-op for an in-memory
    /// cache). Graceful shutdown calls this so `FsyncPolicy::OnClose` gets
    /// its one `fsync`.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync(&self) -> io::Result<()> {
        match &self.log {
            Some(log) => log.sync(),
            None => Ok(()),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The log path, if persisted.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// The atomic-compaction temp path: `<path>.compact` (appended, never
/// substituted — `results.cache` must map to `results.cache.compact`, not
/// `results.compact`).
fn compact_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".compact");
    PathBuf::from(os)
}

/// The 5-byte log header (magic + version) — exposed so tests and tools
/// can hand-build logs in the current format.
pub fn log_header() -> [u8; 5] {
    let [m0, m1, m2, m3] = *MAGIC;
    [m0, m1, m2, m3, VERSION]
}

/// Encodes one record in the current log format (current `KEY_VERSION`).
pub fn encode_record(key: u128, summary: &RunSummary) -> Vec<u8> {
    encode_record_raw(key, KEY_VERSION, &summary_to_bytes(summary))
}

/// Verifies a stream's 5-byte cache-log header (magic + version).
fn check_stream_header(r: &mut impl Read) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "sync stream: short header"))?;
    let [magic @ .., version] = header;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "sync stream: bad cache-log magic",
        ));
    }
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("sync stream: cache-log version {version} unsupported (want {VERSION})"),
        ));
    }
    Ok(())
}

/// Decodes a single-record stream — a cache-log header followed by exactly
/// one record, the `GET /v1/cache/record/<key>` response body — verifying
/// the magic, version, and the record's checksum.
///
/// # Errors
///
/// `InvalidData` for a wrong header, a short/damaged/checksum-failing
/// record, a record under a superseded `KEY_VERSION`, or an empty stream.
pub fn decode_single_record(bytes: &[u8]) -> io::Result<(u128, RunSummary)> {
    let mut r = bytes;
    check_stream_header(&mut r)?;
    match read_record(&mut r)? {
        RawRecord::Live(key, summary, _) => Ok((key, *summary)),
        RawRecord::Stale(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record is under a superseded key version",
        )),
        RawRecord::Eof => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record stream is empty",
        )),
    }
}

fn encode_record_raw(key: u128, ver: u8, body: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_HEADER + body.len());
    rec.extend_from_slice(&key.to_le_bytes());
    rec.push(ver);
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&record_sum(key, ver, body).to_le_bytes());
    rec.extend_from_slice(body);
    rec
}

/// Upper bound on one record's body. A summary encodes to well under a
/// kilobyte; a length beyond this is log corruption, and bounding it keeps
/// a corrupt length field from demanding a multi-gigabyte allocation at
/// open (the torn-tail recovery then kicks in instead).
const MAX_RECORD: usize = 1024 * 1024;

/// Bytes before a record's body: key `u128`, key-version `u8`, length
/// `u32`, checksum `u64`.
const RECORD_HEADER: usize = 16 + 1 + 4 + 8;

/// One frame off the log, as the replay loop sees it.
enum RawRecord {
    /// A checksum-verified record at the current `KEY_VERSION`, decoded.
    /// The `u64` is its full on-disk size.
    Live(u128, Box<RunSummary>, u64),
    /// A checksum-verified record under a superseded `KEY_VERSION` — its
    /// key can never be looked up, and its body may not even decode under
    /// today's codec, so it is skipped without decoding. The `u64` is its
    /// full on-disk size (dead bytes).
    Stale(u64),
    /// Clean EOF at a record boundary.
    Eof,
}

/// Reads one log record, verifying its checksum. Every error return means
/// "damage starts here" to the recovery loop — a short read, an absurd
/// length, a checksum mismatch, and an undecodable body are all the same
/// cut point.
fn read_record(r: &mut impl Read) -> io::Result<RawRecord> {
    let mut key = [0u8; 16];
    match r.read_exact(&mut key) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(RawRecord::Eof),
        Err(e) => return Err(e),
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    let [ver] = ver;
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_RECORD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache record length {len} exceeds {MAX_RECORD}"),
        ));
    }
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let sum = u64::from_le_bytes(sum);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let key = u128::from_le_bytes(key);
    let want = record_sum(key, ver, &body);
    if sum != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache record checksum mismatch (stored {sum:#018x}, computed {want:#018x})"),
        ));
    }
    let size = (RECORD_HEADER + len) as u64;
    if ver != KEY_VERSION {
        return Ok(RawRecord::Stale(size));
    }
    let summary = read_summary(&mut body.as_slice())?;
    Ok(RawRecord::Live(key, Box::new(summary), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::digest::digest;
    use malec_core::{ScenarioSource, Simulator};
    use malec_trace::scenario::preset_named;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malec_serve_cache_{name}_{}", std::process::id()))
    }

    fn sample(seed: u64) -> RunSummary {
        let scenario = preset_named("store_burst").expect("preset");
        Simulator::new(SimConfig::malec())
            .run_source(&ScenarioSource::Scenario(scenario), 2_000, seed)
            .expect("generator sources cannot fail")
    }

    /// The on-disk record size of one summary.
    fn record_size(s: &RunSummary) -> u64 {
        (RECORD_HEADER + summary_to_bytes(s).len()) as u64
    }

    #[test]
    fn keys_separate_config_scenario_seed_horizon_and_replicate() {
        let s1 = preset_named("store_burst").expect("preset");
        let s2 = preset_named("tlb_thrash").expect("preset");
        let base = cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0);
        assert_eq!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::base1ldst(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s2, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 2_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 2, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 1));
    }

    #[test]
    fn replicate_cells_never_collide_with_legacy_or_each_other() {
        use malec_trace::seed::replicate_seed;
        let s = preset_named("store_burst").expect("preset");
        let cfg = SimConfig::malec();
        // Adversarial base seed: another submission's derived replicate
        // seed. Folding (base, replicate) instead of the derived seed keeps
        // the cells distinct.
        let derived = replicate_seed(1, 3);
        assert_ne!(
            cache_key(&cfg, &s, 1_000, 1, 3),
            cache_key(&cfg, &s, 1_000, derived, 0),
            "replicate 3 of base 1 must not alias a legacy cell at the derived seed"
        );
        let keys: Vec<u128> = (0..16).map(|r| cache_key(&cfg, &s, 1_000, 1, r)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "replicates of one cell must key distinctly");
            }
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::in_memory();
        let key = 42u128;
        assert!(cache.lookup(key).is_none());
        cache.count_miss(); // the scheduler counts the miss when it claims
        cache
            .insert_persist(key, Arc::new(sample(1)))
            .expect("insert");
        assert!(cache.lookup(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn persisted_cache_survives_reopen_bit_for_bit() {
        let path = tmp("reopen");
        std::fs::remove_file(&path).ok();
        let a = sample(7);
        let b = sample(8);
        {
            let mut cache = ResultCache::open(&path).expect("open fresh");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(b.clone()))
                .expect("insert");
        }
        let mut cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2);
        let got_a = cache.lookup(1).expect("a persisted");
        let got_b = cache.lookup(2).expect("b persisted");
        assert_eq!(digest(&got_a), digest(&a), "lossless persistence");
        assert_eq!(digest(&got_b), digest(&b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_bytes_survive_reopen_but_bytes_appended_do_not() {
        // The accounting bugfix: a warm-restarted cache knows its real log
        // size, while bytes_appended stays a this-process counter.
        let path = tmp("logbytes");
        std::fs::remove_file(&path).ok();
        let (a, b) = (sample(7), sample(8));
        let full = HEADER_LEN + record_size(&a) + record_size(&b);
        {
            let mut cache = ResultCache::open(&path).expect("open fresh");
            cache.insert_persist(1, Arc::new(a)).expect("insert");
            cache.insert_persist(2, Arc::new(b)).expect("insert");
            let s = cache.stats();
            assert_eq!(s.log_bytes, full);
            assert_eq!(s.bytes_appended, full - HEADER_LEN);
            assert_eq!(s.live_bytes, full - HEADER_LEN);
        }
        let cache = ResultCache::open(&path).expect("reopen");
        let s = cache.stats();
        assert_eq!(s.log_bytes, full, "log length is known after a restart");
        assert_eq!(s.live_bytes, full - HEADER_LEN);
        assert_eq!(s.bytes_appended, 0, "nothing appended this lifetime");
        assert_eq!(cache.dead_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_log_stays_appendable() {
        let path = tmp("truncated");
        std::fs::remove_file(&path).ok();
        let a = sample(9);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(sample(10)))
                .expect("insert");
        }
        // Simulate a crash mid-append: cut into the second record.
        let full = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(full - 10).expect("truncate");
        drop(f);
        {
            let mut cache = ResultCache::open(&path).expect("reopen survives");
            assert_eq!(cache.stats().loaded, 1, "only the complete record");
            assert!(cache.lookup(1).is_some());
            assert!(cache.lookup(2).is_none());
            cache
                .insert_persist(3, Arc::new(sample(11)))
                .expect("append works");
        }
        let cache = ResultCache::open(&path).expect("reopen again");
        assert_eq!(cache.stats().loaded, 2, "entry 1 + appended entry 3");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a cache log").expect("write");
        let err = ResultCache::open(&path).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_mid_log_salvages_the_prefix() {
        let path = tmp("flip");
        std::fs::remove_file(&path).ok();
        let a = sample(21);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(sample(22)))
                .expect("insert");
            cache
                .insert_persist(3, Arc::new(sample(23)))
                .expect("insert");
        }
        // Flip one byte inside the SECOND record's body. Records are
        // equal-sized here (same scenario shape), so locate it by arithmetic.
        let mut bytes = std::fs::read(&path).expect("read");
        let record = (bytes.len() - 5) / 3;
        let victim = 5 + record + RECORD_HEADER + record / 2;
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupt log");

        let mut cache = ResultCache::open(&path).expect("recovery, not refusal");
        assert_eq!(cache.stats().loaded, 1, "records 2 and 3 dropped");
        let got = cache.lookup(1).expect("record 1 salvaged");
        assert_eq!(digest(&got), digest(&a), "salvaged record is intact");
        assert!(cache.lookup(2).is_none(), "damaged record never served");
        assert!(cache.lookup(3).is_none(), "records behind damage dropped");
        cache
            .insert_persist(4, Arc::new(sample(24)))
            .expect("truncated log stays appendable");
        drop(cache);
        let cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2, "entry 1 + appended entry 4");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_append_rolls_back_and_log_stays_valid() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let faults = Faults::disarmed();
        faults.arm("cache.append.torn", 2, Some(11));
        {
            let mut cache =
                ResultCache::open_with(&path, FsyncPolicy::Always, faults.clone()).expect("open");
            cache
                .insert_persist(1, Arc::new(sample(31)))
                .expect("first append clean");
            let err = cache
                .insert_persist(2, Arc::new(sample(32)))
                .expect_err("second append torn");
            assert!(err.to_string().contains("injected torn append"), "{err}");
            // In-memory entry survives the failed persist; the log rolled
            // the 11 torn bytes back in place, so the next append lands on
            // a clean boundary.
            assert!(cache.lookup(2).is_some());
            cache
                .insert_persist(3, Arc::new(sample(33)))
                .expect("append after rollback");
        }
        assert_eq!(faults.fired("cache.append.torn"), 1);
        let mut cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2, "torn record 2 was rolled back");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).is_none(), "torn record is not on disk");
        assert!(cache.lookup(3).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_key_records_replay_last_record_wins() {
        // A hand-built log with three records for two keys: key 1 appears
        // twice, and the LATER record must win the replay (this is what a
        // resubmission racing a failed-append rollback leaves on disk).
        let path = tmp("dup");
        std::fs::remove_file(&path).ok();
        let (old, new, other) = (sample(41), sample(42), sample(43));
        let mut log = log_header().to_vec();
        log.extend_from_slice(&encode_record(1, &old));
        log.extend_from_slice(&encode_record(2, &other));
        log.extend_from_slice(&encode_record(1, &new));
        std::fs::write(&path, &log).expect("write log");

        let mut cache = ResultCache::open(&path).expect("open");
        let s = cache.stats();
        assert_eq!(s.loaded, 2, "two keys, not three records");
        assert_eq!(s.entries, 2);
        assert_eq!(
            s.live_bytes,
            record_size(&new) + record_size(&other),
            "the superseded duplicate is dead, not live"
        );
        assert_eq!(cache.dead_bytes(), record_size(&old));
        let got = cache.lookup(1).expect("key 1 resident");
        assert_eq!(digest(&got), digest(&new), "the LAST record wins");
        assert_eq!(
            digest(&cache.lookup(2).expect("key 2 resident")),
            digest(&other)
        );

        // Compaction drops the dead duplicate; a reopen is bit-identical.
        let outcome = cache.compact().expect("compact");
        assert_eq!(outcome.bytes_before, log.len() as u64);
        assert_eq!(
            outcome.bytes_after,
            HEADER_LEN + record_size(&new) + record_size(&other)
        );
        assert_eq!(outcome.records, 2);
        assert_eq!(cache.dead_bytes(), 0);
        drop(cache);
        let mut reopened = ResultCache::open(&path).expect("reopen");
        assert_eq!(reopened.stats().loaded, 2);
        assert_eq!(
            digest(&reopened.lookup(1).expect("key 1")),
            digest(&new),
            "compacted log serves the same bytes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_key_version_records_are_skipped_not_served() {
        // A record tagged with a superseded KEY_VERSION is valid on disk
        // (checksum passes) but its key can never be looked up — replay
        // must skip it without decoding, and compaction must drop it.
        let path = tmp("stalever");
        std::fs::remove_file(&path).ok();
        let live = sample(51);
        let mut log = log_header().to_vec();
        // A stale-version record whose body is NOT a valid summary
        // encoding — exactly what a codec change leaves behind.
        log.extend_from_slice(&encode_record_raw(9, KEY_VERSION - 1, b"old-codec-bytes"));
        log.extend_from_slice(&encode_record(1, &live));
        std::fs::write(&path, &log).expect("write log");

        let mut cache = ResultCache::open(&path).expect("open skips, not refuses");
        assert_eq!(cache.stats().loaded, 1, "only the current-version record");
        assert!(cache.lookup(9).is_none(), "stale record is never served");
        assert!(cache.lookup(1).is_some());
        assert_eq!(
            cache.dead_bytes(),
            (RECORD_HEADER + b"old-codec-bytes".len()) as u64
        );
        cache.compact().expect("compact");
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            HEADER_LEN + record_size(&live),
            "compaction dropped the stale record from disk"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_cap_evicts_lru_first_and_never_the_newest() {
        let path = tmp("evict");
        std::fs::remove_file(&path).ok();
        let samples: Vec<RunSummary> = (61..66).map(sample).collect();
        let one = record_size(&samples[0]);
        // Room for two records (records of one scenario shape are
        // equal-sized).
        let cap = 2 * one;
        let mut cache = ResultCache::open(&path)
            .expect("open")
            .with_max_bytes(Some(cap));
        for (i, s) in samples.iter().enumerate() {
            cache
                .insert_persist(i as u128, Arc::new(s.clone()))
                .expect("insert");
            assert!(
                cache.stats().live_bytes <= cap,
                "cap holds after insert {i}"
            );
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2, "cap admits exactly two records");
        assert_eq!(s.evicted, 3);
        assert!(cache.lookup(4).is_some(), "newest survives");
        assert!(cache.lookup(0).is_none(), "oldest evicted");

        // Touching an entry protects it: after a lookup of key 3, the next
        // insert evicts key 4 (now the least recently used) instead.
        assert!(cache.lookup(3).is_some());
        cache
            .insert_persist(99, Arc::new(samples[0].clone()))
            .expect("insert");
        assert!(cache.lookup(3).is_some(), "recently served entry survives");
        assert!(cache.lookup(4).is_none(), "LRU entry went instead");

        // Evicted keys are gone from memory but still on disk until a
        // compaction; an uncapped reopen sees every record.
        drop(cache);
        let reopened = ResultCache::open(&path).expect("reopen uncapped");
        assert_eq!(reopened.stats().loaded, 6, "disk still holds all six");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capped_reopen_evicts_the_replayed_tail_immediately() {
        let path = tmp("evict_reopen");
        std::fs::remove_file(&path).ok();
        let samples: Vec<RunSummary> = (71..75).map(sample).collect();
        let one = record_size(&samples[0]);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            for (i, s) in samples.iter().enumerate() {
                cache
                    .insert_persist(i as u128, Arc::new(s.clone()))
                    .expect("insert");
            }
        }
        let mut cache = ResultCache::open(&path)
            .expect("reopen")
            .with_max_bytes(Some(2 * one));
        let s = cache.stats();
        assert_eq!(s.loaded, 4, "all four replayed before the cap applied");
        assert_eq!(s.entries, 2, "then the cap evicted the replay-oldest");
        assert!(cache.lookup(3).is_some(), "newest on disk survives");
        assert!(cache.lookup(0).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_reopens_bit_identical_and_resets_dead_bytes() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        let samples: Vec<RunSummary> = (81..85).map(sample).collect();
        let mut cache = ResultCache::open(&path).expect("open");
        for (i, s) in samples.iter().enumerate() {
            cache
                .insert_persist(i as u128, Arc::new(s.clone()))
                .expect("insert");
        }
        // Manufacture dead bytes: re-persist two keys (duplicates on disk).
        for i in [0usize, 2] {
            cache
                .insert_persist(i as u128, Arc::new(samples[i].clone()))
                .expect("re-insert");
        }
        let dead = cache.dead_bytes();
        assert_eq!(dead, 2 * record_size(&samples[0]));
        assert!(cache.dead_ratio() > 0.3, "{}", cache.dead_ratio());

        let before = std::fs::metadata(&path).expect("meta").len();
        let outcome = cache.compact().expect("compact");
        assert_eq!(outcome.bytes_before, before);
        assert_eq!(outcome.bytes_after, before - dead);
        assert_eq!(cache.stats().compactions, 1);
        assert_eq!(cache.dead_bytes(), 0);
        assert!((cache.dead_ratio() - 0.0).abs() < f64::EPSILON);

        // The compacted log is appendable and reopens bit-identically.
        cache
            .insert_persist(99, Arc::new(sample(86)))
            .expect("append after compact");
        drop(cache);
        let mut reopened = ResultCache::open(&path).expect("reopen");
        assert_eq!(reopened.stats().loaded, 5);
        for (i, s) in samples.iter().enumerate() {
            let got = reopened.lookup(i as u128).expect("key resident");
            assert_eq!(digest(&got), digest(s), "key {i} bit-identical");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_compaction_leaves_the_old_log_intact() {
        let path = tmp("compact_torn");
        std::fs::remove_file(&path).ok();
        let faults = Faults::disarmed();
        // The "crash" lands after 1 complete record of the rewrite.
        faults.arm("cache.compact.torn", 1, Some(1));
        let mut cache =
            ResultCache::open_with(&path, FsyncPolicy::default(), faults.clone()).expect("open");
        for i in 0..3u128 {
            cache
                .insert_persist(i, Arc::new(sample(90 + i as u64)))
                .expect("insert");
        }
        cache.insert_persist(0, Arc::new(sample(90))).expect("dup");
        let before = std::fs::read(&path).expect("read log");

        let err = cache.compact().expect_err("injected tear");
        assert!(
            err.to_string().contains("injected torn compaction"),
            "{err}"
        );
        assert_eq!(faults.fired("cache.compact.torn"), 1);
        assert_eq!(
            std::fs::read(&path).expect("reread"),
            before,
            "the live log is untouched — the tear hit only the temp"
        );
        assert!(compact_path(&path).exists(), "the torn temp is on disk");

        // The cache keeps serving, and appends still work mid-"crash".
        assert!(cache.lookup(1).is_some());
        cache
            .insert_persist(7, Arc::new(sample(97)))
            .expect("append after failed compaction");
        drop(cache);

        // Reopen: the stale temp is swept, the log replays fully, and a
        // retried compaction completes.
        let mut reopened = ResultCache::open(&path).expect("reopen");
        assert!(!compact_path(&path).exists(), "stale temp removed at open");
        assert_eq!(reopened.stats().loaded, 4);
        let outcome = reopened.compact().expect("retried compaction");
        assert_eq!(outcome.records, 4);
        assert_eq!(reopened.dead_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn export_ingest_round_trips_bit_identical() {
        let path_a = tmp("sync_a");
        let path_b = tmp("sync_b");
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
        let samples: Vec<RunSummary> = (101..104).map(sample).collect();
        let mut a = ResultCache::open(&path_a).expect("open a");
        for (i, s) in samples.iter().enumerate() {
            a.insert_persist(i as u128, Arc::new(s.clone()))
                .expect("insert");
        }
        let stream = a.export_live();
        assert_eq!(
            stream.len() as u64,
            HEADER_LEN + a.stats().live_bytes,
            "the export is exactly the live record set"
        );

        let mut b = ResultCache::open(&path_b).expect("open b");
        // Seed one key so the ingest has something to skip.
        b.insert_persist(1, Arc::new(samples[1].clone()))
            .expect("seed");
        let report = b.ingest(&mut stream.as_slice()).expect("ingest");
        assert_eq!(report.records, 3);
        assert_eq!(report.inserted, 2, "the resident key was skipped");
        assert_eq!(report.bytes, stream.len() as u64);
        assert!(report.damaged.is_none());
        for (i, s) in samples.iter().enumerate() {
            let got = b.lookup(i as u128).expect("warmed");
            assert_eq!(digest(&got), digest(s), "warmed key {i} bit-identical");
        }
        // The warm-up persisted: a cold reopen of B serves everything.
        drop(b);
        let reopened = ResultCache::open(&path_b).expect("reopen b");
        assert_eq!(reopened.stats().loaded, 3);

        // A damaged stream keeps the verified prefix and reports the cut.
        let mut damaged = stream.clone();
        let cut = damaged.len() - 20;
        damaged.truncate(cut);
        let mut c = ResultCache::in_memory();
        let report = c.ingest(&mut damaged.as_slice()).expect("prefix survives");
        assert_eq!(report.records, 2, "the torn third record is dropped");
        assert!(report.damaged.is_some());

        // A stream that is not a cache log is refused outright.
        let err = ResultCache::in_memory()
            .ingest(&mut b"not a log at all".as_slice())
            .expect_err("bad magic refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn single_record_stream_round_trips_and_rejects_damage() {
        let s = sample(111);
        let mut body = log_header().to_vec();
        body.extend_from_slice(&encode_record(7, &s));
        let (key, got) = decode_single_record(&body).expect("round trip");
        assert_eq!(key, 7);
        assert_eq!(digest(&got), digest(&s), "decoded record is bit-identical");

        let mut flipped = body.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(
            decode_single_record(&flipped).is_err(),
            "checksum catches a flip"
        );
        assert!(
            decode_single_record(&log_header()).is_err(),
            "empty stream refused"
        );
        assert!(decode_single_record(b"nope").is_err(), "bad header refused");
        let mut stale = log_header().to_vec();
        stale.extend_from_slice(&encode_record_raw(7, KEY_VERSION - 1, b"old"));
        assert!(
            decode_single_record(&stale).is_err(),
            "stale version refused"
        );
    }

    #[test]
    fn live_records_snapshot_matches_export_live_exactly() {
        let mut cache = ResultCache::in_memory();
        for i in 0..3u128 {
            cache
                .insert_persist(i, Arc::new(sample(120 + i as u64)))
                .expect("insert");
        }
        let export = cache.export_live();
        let (records, len) = cache.live_records();
        assert_eq!(len, export.len() as u64, "declared length is exact");
        let mut rebuilt = log_header().to_vec();
        for (key, summary) in &records {
            rebuilt.extend_from_slice(&encode_record(*key, summary));
        }
        assert_eq!(rebuilt, export, "chunk-encoded stream is byte-identical");
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("on-close".parse::<FsyncPolicy>(), Ok(FsyncPolicy::OnClose));
        assert_eq!("onclose".parse::<FsyncPolicy>(), Ok(FsyncPolicy::OnClose));
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::OnClose);
    }

    #[test]
    fn single_byte_flips_always_change_the_checksum() {
        // The bijectivity argument behind the checksum: with identical
        // subsequent bytes, flipping any single body byte flips the sum.
        let body: Vec<u8> = (0u16..200).map(|i| (i % 251) as u8).collect();
        let base = record_sum(99, KEY_VERSION, &body);
        for i in 0..body.len() {
            for bit in 0..8 {
                let mut flipped = body.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    record_sum(99, KEY_VERSION, &flipped),
                    base,
                    "flip at byte {i} bit {bit} must change the sum"
                );
            }
        }
        // The version byte is covered too.
        assert_ne!(record_sum(99, KEY_VERSION - 1, &body), base);
    }
}
