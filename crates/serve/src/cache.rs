//! The content-addressed result cache.
//!
//! Every simulation cell the service runs is a pure function: one
//! `(SimConfig, scenario, seed, horizon)` tuple maps to one [`RunSummary`],
//! bit for bit, forever — PRs 1–2 proved that with golden digests and
//! replay verification, and it is exactly the property that makes a result
//! cache *sound*. [`cache_key`] derives a 128-bit stable key from the tuple
//! (via [`malec_types::stable`]); [`ResultCache`] maps keys to summaries
//! and persists every insertion to a compact append-only log, so a
//! restarted server comes back warm.
//!
//! Log format (`MSRC` magic, little-endian):
//!
//! ```text
//! magic "MSRC"  version u8
//! record*:
//!   key   u128
//!   len   u32           — byte length of the summary encoding
//!   body  [u8; len]     — malec_core::digest::write_summary encoding
//! ```
//!
//! On open, the log is replayed into memory; a trailing partial record
//! (a crash mid-append) is dropped and the file truncated to the last
//! complete record, so the log is always left appendable. A log with the
//! wrong magic or version is refused rather than silently rebuilt —
//! deleting a stale cache is an operator decision.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use malec_core::digest::{read_summary, summary_to_bytes};
use malec_core::RunSummary;
use malec_trace::Scenario;
use malec_types::stable::{StableHasher, StableKey};
use malec_types::SimConfig;

const MAGIC: &[u8; 4] = b"MSRC";
const VERSION: u8 = 1;

/// Version tag folded into every cache key. Bump when any [`StableKey`]
/// encoding (or the summary codec) changes, so persisted logs from older
/// encodings can never alias new keys. (v2: the replicate index joined the
/// key, so replicate cells can never collide with each other or with
/// legacy single-seed cells.)
const KEY_VERSION: u8 = 2;

/// Derives the stable 128-bit cache key of one simulation cell.
///
/// `seed` is the **base** seed of the submission and `replicate` the cell's
/// replicate index; the pair is folded (not the derived per-replicate
/// seed), so a legacy single-seed cell — always `(seed, 0)` — and every
/// replicate address distinct entries even under adversarial seed choices
/// (e.g. a base seed equal to another submission's derived replicate seed).
pub fn cache_key(
    config: &SimConfig,
    scenario: &Scenario,
    insts: u64,
    seed: u64,
    replicate: u32,
) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(KEY_VERSION);
    config.fold(&mut h);
    scenario.fold(&mut h);
    h.write_u64(insts);
    h.write_u64(seed);
    replicate.fold(&mut h);
    h.finish()
}

/// Running cache counters, served by `GET /v1/cache/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Entries replayed from the persisted log at open.
    pub loaded: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (each one becomes a simulation).
    pub misses: u64,
    /// Cells that attached to an identical in-flight simulation instead of
    /// starting their own (the scheduler reports these).
    pub coalesced: u64,
    /// Bytes appended to the log over this process lifetime.
    pub bytes_appended: u64,
}

/// A shareable append handle to the cache log, locked independently of the
/// in-memory map: the scheduler serializes a fresh summary and appends it
/// **outside** the map mutex, so a disk flush never blocks concurrent
/// claim-step lookups (or the stats endpoint).
#[derive(Clone, Debug)]
pub struct LogAppender {
    file: Arc<Mutex<BufWriter<File>>>,
}

impl LogAppender {
    /// Appends one record and flushes (a crash after `append` returns must
    /// not lose the record). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log file.
    pub fn append(&self, key: u128, summary: &RunSummary) -> io::Result<u64> {
        let body = summary_to_bytes(summary);
        let mut log = self.file.lock().expect("log lock");
        log.write_all(&key.to_le_bytes())?;
        log.write_all(&(body.len() as u32).to_le_bytes())?;
        log.write_all(&body)?;
        log.flush()?;
        Ok((16 + 4 + body.len()) as u64)
    }
}

/// The in-memory map plus its append-only persistence.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u128, Arc<RunSummary>>,
    log: Option<LogAppender>,
    path: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// A purely in-memory cache (no persistence).
    pub fn in_memory() -> Self {
        Self {
            map: HashMap::new(),
            log: None,
            path: None,
            stats: CacheStats::default(),
        }
    }

    /// Opens (or creates) a persisted cache at `path`, replaying any
    /// existing log into memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` if the file exists but
    /// is not a cache log of the supported version.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut map = HashMap::new();
        let mut good_end = (MAGIC.len() + 1) as u64;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            file.write_all(MAGIC)?;
            file.write_all(&[VERSION])?;
        } else {
            {
                let mut reader = BufReader::new(&mut file);
                let mut header = [0u8; 5];
                reader.read_exact(&mut header).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: not a cache log (short header)", path.display()),
                    )
                })?;
                if &header[..4] != MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: bad cache-log magic", path.display()),
                    ));
                }
                if header[4] != VERSION {
                    return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: cache-log version {} unsupported (want {VERSION}); delete it to rebuild",
                        path.display(),
                        header[4]
                    ),
                ));
                }
                loop {
                    match read_record(&mut reader) {
                        Ok(Some((key, summary, len))) => {
                            map.insert(key, Arc::new(summary));
                            good_end += len;
                        }
                        // Clean EOF at a record boundary: the log is good.
                        Ok(None) => break,
                        // A record cut short by a crash mid-append: keep
                        // the prefix, drop the tail.
                        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                        // Anything else is real corruption (bad lengths,
                        // undecodable summaries), not a torn tail — refuse
                        // rather than silently discarding the records
                        // behind it.
                        Err(e) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "{}: corrupt cache log at byte {good_end}: {e} \
                                     (delete the file to rebuild)",
                                    path.display()
                                ),
                            ));
                        }
                    }
                }
            }
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::End(0))?;
        let stats = CacheStats {
            entries: map.len() as u64,
            loaded: map.len() as u64,
            ..CacheStats::default()
        };
        Ok(Self {
            map,
            log: Some(LogAppender {
                file: Arc::new(Mutex::new(BufWriter::new(file))),
            }),
            path: Some(path.to_owned()),
            stats,
        })
    }

    /// Looks `key` up, counting a hit. A `None` result is **not** counted
    /// here: the scheduler distinguishes a true miss (a simulation starts —
    /// [`count_miss`](Self::count_miss)) from attaching to an identical
    /// in-flight simulation ([`count_coalesced`](Self::count_coalesced)).
    pub fn lookup(&mut self, key: u128) -> Option<Arc<RunSummary>> {
        let hit = self.map.get(&key).map(Arc::clone);
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Counts one true miss (a cell that goes on to simulate).
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts a summary into the in-memory map. Persistence is separate:
    /// append through [`appender`](Self::appender) (outside the map lock)
    /// and record the outcome with [`note_appended`](Self::note_appended),
    /// or use [`insert_persist`](Self::insert_persist) where lock splitting
    /// does not matter.
    pub fn insert(&mut self, key: u128, summary: Arc<RunSummary>) {
        if self.map.insert(key, summary).is_none() {
            self.stats.entries += 1;
        }
    }

    /// The log's append handle, if this cache is persisted.
    pub fn appender(&self) -> Option<LogAppender> {
        self.log.clone()
    }

    /// Records bytes a [`LogAppender::append`] wrote (the appender runs
    /// outside this struct's lock, so the stat arrives separately).
    pub fn note_appended(&mut self, bytes: u64) {
        self.stats.bytes_appended += bytes;
    }

    /// [`insert`](Self::insert) plus a synchronous log append — the
    /// convenience path for tests and single-threaded embedders.
    ///
    /// # Errors
    ///
    /// Propagates log-append I/O errors (the in-memory insert still took
    /// effect).
    pub fn insert_persist(&mut self, key: u128, summary: Arc<RunSummary>) -> io::Result<()> {
        self.insert(key, Arc::clone(&summary));
        if let Some(log) = self.appender() {
            let bytes = log.append(key, &summary)?;
            self.note_appended(bytes);
        }
        Ok(())
    }

    /// Counts one coalesced cell (see [`CacheStats::coalesced`]).
    pub fn count_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The log path, if persisted.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Upper bound on one record's body. A summary encodes to well under a
/// kilobyte; a length beyond this is log corruption, and bounding it keeps
/// a corrupt length field from demanding a multi-gigabyte allocation at
/// open (the torn-tail recovery then kicks in instead).
const MAX_RECORD: usize = 1024 * 1024;

/// Reads one log record; `Ok(None)` on clean EOF before the key.
fn read_record(r: &mut impl Read) -> io::Result<Option<(u128, RunSummary, u64)>> {
    let mut key = [0u8; 16];
    match r.read_exact(&mut key) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_RECORD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache record length {len} exceeds {MAX_RECORD}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let summary = read_summary(&mut body.as_slice())?;
    Ok(Some((
        u128::from_le_bytes(key),
        summary,
        (16 + 4 + len) as u64,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::digest::digest;
    use malec_core::{ScenarioSource, Simulator};
    use malec_trace::scenario::preset_named;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malec_serve_cache_{name}_{}", std::process::id()))
    }

    fn sample(seed: u64) -> RunSummary {
        let scenario = preset_named("store_burst").expect("preset");
        Simulator::new(SimConfig::malec())
            .run_source(&ScenarioSource::Scenario(scenario), 2_000, seed)
            .expect("generator sources cannot fail")
    }

    #[test]
    fn keys_separate_config_scenario_seed_horizon_and_replicate() {
        let s1 = preset_named("store_burst").expect("preset");
        let s2 = preset_named("tlb_thrash").expect("preset");
        let base = cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0);
        assert_eq!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::base1ldst(), &s1, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s2, 1_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 2_000, 1, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 2, 0));
        assert_ne!(base, cache_key(&SimConfig::malec(), &s1, 1_000, 1, 1));
    }

    #[test]
    fn replicate_cells_never_collide_with_legacy_or_each_other() {
        use malec_trace::seed::replicate_seed;
        let s = preset_named("store_burst").expect("preset");
        let cfg = SimConfig::malec();
        // Adversarial base seed: another submission's derived replicate
        // seed. Folding (base, replicate) instead of the derived seed keeps
        // the cells distinct.
        let derived = replicate_seed(1, 3);
        assert_ne!(
            cache_key(&cfg, &s, 1_000, 1, 3),
            cache_key(&cfg, &s, 1_000, derived, 0),
            "replicate 3 of base 1 must not alias a legacy cell at the derived seed"
        );
        let keys: Vec<u128> = (0..16).map(|r| cache_key(&cfg, &s, 1_000, 1, r)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "replicates of one cell must key distinctly");
            }
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::in_memory();
        let key = 42u128;
        assert!(cache.lookup(key).is_none());
        cache.count_miss(); // the scheduler counts the miss when it claims
        cache
            .insert_persist(key, Arc::new(sample(1)))
            .expect("insert");
        assert!(cache.lookup(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn persisted_cache_survives_reopen_bit_for_bit() {
        let path = tmp("reopen");
        std::fs::remove_file(&path).ok();
        let a = sample(7);
        let b = sample(8);
        {
            let mut cache = ResultCache::open(&path).expect("open fresh");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(b.clone()))
                .expect("insert");
        }
        let mut cache = ResultCache::open(&path).expect("reopen");
        assert_eq!(cache.stats().loaded, 2);
        let got_a = cache.lookup(1).expect("a persisted");
        let got_b = cache.lookup(2).expect("b persisted");
        assert_eq!(digest(&got_a), digest(&a), "lossless persistence");
        assert_eq!(digest(&got_b), digest(&b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_log_stays_appendable() {
        let path = tmp("truncated");
        std::fs::remove_file(&path).ok();
        let a = sample(9);
        {
            let mut cache = ResultCache::open(&path).expect("open");
            cache
                .insert_persist(1, Arc::new(a.clone()))
                .expect("insert");
            cache
                .insert_persist(2, Arc::new(sample(10)))
                .expect("insert");
        }
        // Simulate a crash mid-append: cut into the second record.
        let full = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(full - 10).expect("truncate");
        drop(f);
        {
            let mut cache = ResultCache::open(&path).expect("reopen survives");
            assert_eq!(cache.stats().loaded, 1, "only the complete record");
            assert!(cache.lookup(1).is_some());
            assert!(cache.lookup(2).is_none());
            cache
                .insert_persist(3, Arc::new(sample(11)))
                .expect("append works");
        }
        let cache = ResultCache::open(&path).expect("reopen again");
        assert_eq!(cache.stats().loaded, 2, "entry 1 + appended entry 3");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a cache log").expect("write");
        let err = ResultCache::open(&path).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
