//! The client side of the v1 API: one round trip per call, JSON parsed
//! into small typed views. `malec-cli submit` / `status` are thin wrappers
//! over this module, and the integration tests drive servers through it.
//!
//! Every v1 request is **idempotent** — job submission is content-addressed
//! (an identical resubmission dedups against the cache and any in-flight
//! simulation), and status/report/shutdown are safe to repeat — so the
//! client may retry any call. [`RetryPolicy`] retries connection failures,
//! timeouts, and retryable statuses (408/429/5xx) with capped exponential
//! backoff and deterministic jitter, honoring a server `Retry-After` up to
//! the policy's own backoff ceiling — a misbehaving peer advertising
//! `Retry-After: 86400` must not park a client for a day.

use std::io::Read;
use std::time::{Duration, Instant};

use crate::cache::{decode_single_record, CacheStats};
use crate::http::{request_meta, request_stream};
use crate::json::{parse, Value};

use malec_core::RunSummary;

/// Total per-request budget (connect + write + read).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(60);

/// When and how often to retry a failed call.
///
/// The delay before retry `n` (1-based) is drawn from the *equal jitter*
/// scheme: half of `min(base * 2^(n-1), cap)` is fixed, the other half is a
/// deterministic pseudo-random fraction keyed on the request path and
/// attempt number — concurrent clients spread out, yet every run of the
/// same workload backs off identically. A server-provided `Retry-After`
/// overrides the computed delay, clamped to [`cap`](Self::cap).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub retries: u32,
    /// First-retry backoff ceiling.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Status-poll cadence for [`Client::wait`]'s first polls.
    pub poll_interval: Duration,
    /// Ceiling the poll cadence backs off toward on long-running jobs, so
    /// a million-cell sweep does not hammer the status endpoint at the
    /// short-job cadence for its whole runtime.
    pub poll_max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    #[must_use]
    pub fn none() -> Self {
        Self {
            retries: 0,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            poll_interval: Duration::from_millis(50),
            poll_max: Duration::from_millis(500),
        }
    }

    /// `retries` retries with the standard backoff (100 ms base, 5 s cap).
    #[must_use]
    pub fn retries(retries: u32) -> Self {
        Self {
            retries,
            ..Self::none()
        }
    }

    /// The delay before retry `attempt` (1-based) of a call to `path`.
    #[must_use]
    pub fn backoff(&self, attempt: u32, path: &str) -> Duration {
        let exp = attempt.min(20).saturating_sub(1);
        let ceiling = self
            .base
            .saturating_mul(1u32 << exp.min(16))
            .min(self.cap)
            .max(Duration::from_millis(1));
        let half = ceiling / 2;
        // FNV-1a over (path, attempt): deterministic jitter in [0, half].
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in path.bytes().chain(attempt.to_le_bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let jitter_ms = h % (half.as_millis().max(1) as u64 + 1);
        half + Duration::from_millis(jitter_ms)
    }

    /// The delay before the next status poll, given how many polls have
    /// already happened: starts at [`poll_interval`](Self::poll_interval)
    /// and doubles toward [`poll_max`](Self::poll_max) — a short job is
    /// observed promptly, a long one settles into the slow cadence.
    #[must_use]
    pub fn poll_cadence(&self, polls: u32) -> Duration {
        self.poll_interval
            .saturating_mul(1u32 << polls.min(16))
            .min(self.poll_max)
            .max(Duration::from_millis(1))
    }
}

/// Whether a response status is worth retrying: the request never ran to
/// completion (408 read deadline), the server shed load (429/503), or it
/// failed internally (5xx). Client errors (other 4xx) are deterministic
/// and retried never.
fn retryable_status(status: u16) -> bool {
    status == 408 || status == 429 || (500..600).contains(&status)
}

/// A client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    retry: RetryPolicy,
}

/// A client-side view of one job's status.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job id.
    pub job: u64,
    /// Scenario name.
    pub scenario: String,
    /// `"running"`, `"done"`, or `"failed"`.
    pub state: String,
    /// Total cells.
    pub cells: u64,
    /// Cells finished by fresh simulation.
    pub simulated: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells attached to a concurrent identical simulation.
    pub coalesced: u64,
    /// Cells fetched from their owning peer's cache (sharded serving).
    pub fetched: u64,
    /// Cells that failed (worker panic or injected fault).
    pub failed: u64,
    /// Cells still queued or simulating.
    pub pending: u64,
    /// Replicates a CI target saved across the job's cell groups.
    pub replicates_saved: u64,
    /// Submit-to-done wall clock, once finished.
    pub wall_seconds: Option<f64>,
    /// The first cell failure, when `state` is `"failed"`.
    pub error: Option<String>,
}

impl JobView {
    /// Cells that completed without a simulation of their own.
    pub fn served_without_simulation(&self) -> u64 {
        self.cached + self.coalesced + self.fetched
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        self.state == "done" || self.state == "failed"
    }
}

fn field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("response lacks `{key}`: {v:?}"))
}

/// Parses a status-endpoint JSON object into a [`JobView`] (shared by the
/// one-shot [`Client::status`] and the polling loop of [`Client::wait`]).
fn parse_view(v: &Value) -> Result<JobView, String> {
    Ok(JobView {
        job: field(v, "job")?,
        scenario: v
            .get("scenario")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_owned(),
        state: v
            .get("state")
            .and_then(Value::as_str)
            .ok_or("response lacks `state`")?
            .to_owned(),
        cells: field(v, "cells")?,
        simulated: field(v, "simulated")?,
        cached: field(v, "cached")?,
        coalesced: field(v, "coalesced")?,
        // Absent on pre-sharding servers; default rather than fail.
        fetched: v.get("fetched").and_then(Value::as_u64).unwrap_or(0),
        // Absent on pre-fault-tolerance servers; default rather than fail.
        failed: v.get("failed").and_then(Value::as_u64).unwrap_or(0),
        pending: field(v, "pending")?,
        // Absent on pre-replication servers; default rather than fail.
        replicates_saved: v
            .get("replicates_saved")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        wall_seconds: v.get("wall_seconds").and_then(Value::as_f64),
        error: v
            .get("error")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .filter(|e| !e.is_empty()),
    })
}

impl Client {
    /// A client for `addr` (`host:port`), failing fast (no retries).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            retry: RetryPolicy::none(),
        }
    }

    /// The same client with a different retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// One call under the retry policy. Connection errors, timeouts, and
    /// retryable statuses back off and retry; everything else returns on
    /// the first attempt. A `Retry-After` header overrides the backoff.
    fn call(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        let mut attempt = 0u32;
        loop {
            let outcome = request_meta(&self.addr, method, path, body, REQUEST_TIMEOUT);
            let (fail, retry_after) = match &outcome {
                Ok(resp) if !retryable_status(resp.status) => {
                    return Ok((resp.status, resp.body.clone()))
                }
                Ok(resp) => (format!("server returned {}", resp.status), resp.retry_after),
                Err(e) => (e.to_string(), None),
            };
            attempt += 1;
            if attempt > self.retry.retries {
                return match outcome {
                    Ok(resp) => Ok((resp.status, resp.body)),
                    Err(_) => Err(format!(
                        "{method} {} at {}: {fail} ({attempt} attempt{})",
                        path,
                        self.addr,
                        if attempt == 1 { "" } else { "s" }
                    )),
                };
            }
            // A server pacing hint is honored, but never beyond the
            // policy's own ceiling — one misbehaving peer must not park
            // this client for a day.
            let delay = retry_after.map_or_else(
                || self.retry.backoff(attempt, path),
                |s| Duration::from_secs(s).min(self.retry.cap),
            );
            std::thread::sleep(delay);
        }
    }

    fn call_json(&self, method: &str, path: &str, body: &[u8]) -> Result<Value, String> {
        let (status, text) = self.call(method, path, body)?;
        let v = parse(&text).map_err(|e| format!("{path}: malformed response: {e}"))?;
        if (200..300).contains(&status) {
            Ok(v)
        } else {
            let detail = v
                .get("error")
                .and_then(Value::as_str)
                .map_or_else(|| text.clone(), str::to_owned);
            Err(format!("{path}: server returned {status}: {detail}"))
        }
    }

    /// Submits a TOML spec; returns the job id.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures and server-side rejections
    /// (spec parse errors arrive as `400` with the parser's message).
    pub fn submit(&self, spec_toml: &str) -> Result<u64, String> {
        let v = self.call_json("POST", "/v1/jobs", spec_toml.as_bytes())?;
        field(&v, "job")
    }

    /// Submits a TOML spec restricted to the named config labels — the
    /// scatter sub-job form (`POST /v1/jobs?configs=A,B`). The server
    /// parses the full spec, then keeps only the listed configs.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit); a label not in the spec is a `400`.
    pub fn submit_configs(&self, spec_toml: &str, labels: &[String]) -> Result<u64, String> {
        let path = format!("/v1/jobs?configs={}", labels.join(","));
        let v = self.call_json("POST", &path, spec_toml.as_bytes())?;
        field(&v, "job")
    }

    /// Fetches one verified record from this peer's
    /// `GET /v1/cache/record/<key>` endpoint — the peer-miss path of
    /// sharded serving. The response is a single log-format record; its
    /// checksum and key are verified before the summary is returned.
    /// Transport failures and retryable statuses back off under the
    /// policy; a `404` (the peer has no such record) is deterministic and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures, a missing record, and a
    /// damaged or mismatched response body.
    pub fn fetch_record(&self, key: u128) -> Result<RunSummary, String> {
        let path = format!("/v1/cache/record/{key:032x}");
        let mut attempt = 0u32;
        loop {
            let fail = match self.try_fetch_record(&path, key) {
                Ok(Some(summary)) => return Ok(summary),
                Ok(None) => return Err(format!("{}: no record for key {key:032x}", self.addr)),
                Err(e) => e,
            };
            attempt += 1;
            if attempt > self.retry.retries {
                return Err(format!(
                    "GET {path} at {}: {fail} ({attempt} attempt{})",
                    self.addr,
                    if attempt == 1 { "" } else { "s" }
                ));
            }
            std::thread::sleep(self.retry.backoff(attempt, &path));
        }
    }

    /// One record-fetch attempt: `Ok(None)` is the deterministic "no such
    /// record" answer, `Err` is worth retrying.
    fn try_fetch_record(&self, path: &str, key: u128) -> Result<Option<RunSummary>, String> {
        let (status, mut stream) =
            request_stream(&self.addr, "GET", path, REQUEST_TIMEOUT).map_err(|e| e.to_string())?;
        if status == 404 {
            return Ok(None);
        }
        if status != 200 {
            return Err(format!("server returned {status}"));
        }
        let mut body = Vec::new();
        stream.read_to_end(&mut body).map_err(|e| e.to_string())?;
        let (got, summary) = decode_single_record(&body).map_err(|e| e.to_string())?;
        if got != key {
            return Err(format!(
                "record key mismatch (asked {key:032x}, got {got:032x})"
            ));
        }
        Ok(Some(summary))
    }

    /// Fetches one job's status.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures, unknown jobs, and
    /// malformed responses.
    pub fn status(&self, job: u64) -> Result<JobView, String> {
        let v = self.call_json("GET", &format!("/v1/jobs/{job}"), b"")?;
        parse_view(&v)
    }

    /// Polls until the job reaches a terminal state — `done` *or* `failed`.
    /// A failed job is returned as a view, not an error: inspect
    /// [`JobView::state`] and [`JobView::error`].
    ///
    /// The cadence is [`RetryPolicy::poll_cadence`]: `poll_interval`
    /// doubling toward `poll_max`. A shed poll (the saturation gate's
    /// `503`) or transient server error does **not** abort the wait — the
    /// job keeps running server-side regardless — it just delays the next
    /// poll, by the server's `Retry-After` when one is sent. Transport
    /// errors are bounded by the policy's `retries` (consecutive);
    /// deterministic client errors (`404` for an expired job) are fatal
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns a message when the deadline passes, the server answers a
    /// non-retryable error, or `retries + 1` consecutive transport
    /// failures occur.
    pub fn wait(&self, job: u64, timeout: Duration) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        let path = format!("/v1/jobs/{job}");
        let mut polls = 0u32;
        let mut transport_failures = 0u32;
        loop {
            match request_meta(&self.addr, "GET", &path, b"", REQUEST_TIMEOUT) {
                Ok(resp) if (200..300).contains(&resp.status) => {
                    transport_failures = 0;
                    let v = parse(&resp.body)
                        .map_err(|e| format!("{path}: malformed response: {e}"))?;
                    let view = parse_view(&v)?;
                    if view.is_terminal() {
                        return Ok(view);
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "job {job} still {} after {timeout:?} ({} of {} cells pending)",
                            view.state, view.pending, view.cells
                        ));
                    }
                    std::thread::sleep(self.retry.poll_cadence(polls));
                    polls += 1;
                }
                Ok(resp) if retryable_status(resp.status) => {
                    // The server answered, so it is alive — a shed or
                    // failed poll never gives up on the job. Honor its
                    // pacing hint when it sent one.
                    transport_failures = 0;
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "job {job}: server still answering {} to status polls at the \
                             {timeout:?} deadline",
                            resp.status
                        ));
                    }
                    // Clamped like the call path: the hint paces, the
                    // policy bounds.
                    let delay = resp.retry_after.map_or_else(
                        || self.retry.poll_cadence(polls),
                        |s| Duration::from_secs(s).min(self.retry.cap),
                    );
                    std::thread::sleep(delay);
                    polls += 1;
                }
                Ok(resp) => {
                    // Deterministic client error (404: unknown/expired job).
                    let detail = parse(&resp.body)
                        .ok()
                        .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
                        .unwrap_or(resp.body);
                    return Err(format!("{path}: server returned {}: {detail}", resp.status));
                }
                Err(e) => {
                    transport_failures += 1;
                    if transport_failures > self.retry.retries {
                        return Err(format!(
                            "GET {path} at {}: {e} ({transport_failures} consecutive failure{})",
                            self.addr,
                            if transport_failures == 1 { "" } else { "s" }
                        ));
                    }
                    std::thread::sleep(self.retry.backoff(transport_failures, &path));
                }
            }
        }
    }

    /// Submits `spec` and waits for `done`, resubmitting up to `resubmits`
    /// times if the job **fails** (a worker panic, say). Resubmission is
    /// cheap and safe: cells that completed before the failure were cached,
    /// so each retry re-simulates only the cells that actually failed.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec is rejected, the deadline passes, or
    /// every submission fails.
    pub fn run_to_completion(
        &self,
        spec: &str,
        timeout: Duration,
        resubmits: u32,
    ) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        let mut last = String::new();
        for round in 0..=resubmits {
            let job = self.submit(spec)?;
            let left = deadline.saturating_duration_since(Instant::now());
            let view = self.wait(job, left)?;
            if view.state == "done" {
                return Ok(view);
            }
            last = view.error.unwrap_or_else(|| "unknown failure".to_owned());
            if round < resubmits {
                std::thread::sleep(self.retry.backoff(round + 1, "resubmit"));
            }
        }
        Err(format!(
            "job failed after {} submission(s): {last}",
            u64::from(resubmits) + 1
        ))
    }

    /// Fetches a finished job's report JSON (the `malec-cli run` schema).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown jobs and jobs still running (`409`).
    pub fn report(&self, job: u64) -> Result<String, String> {
        let (status, text) = self.call("GET", &format!("/v1/jobs/{job}/report"), b"")?;
        if status == 200 {
            Ok(text)
        } else {
            Err(format!("report for job {job}: server returned {status}"))
        }
    }

    /// Fetches a finished job's paired-comparison report JSON (the
    /// `malec-cli compare` schema), assembled server-side from the job's
    /// cache-keyed per-replicate cells.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown jobs, jobs still running (`409`), and
    /// jobs with no comparable pair (`400`, with the server's reason).
    pub fn compare(&self, job: u64) -> Result<String, String> {
        let (status, text) = self.call("GET", &format!("/v1/jobs/{job}/compare"), b"")?;
        if status == 200 {
            Ok(text)
        } else {
            let detail = parse(&text)
                .ok()
                .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
                .unwrap_or_default();
            Err(format!(
                "compare for job {job}: server returned {status}{}",
                if detail.is_empty() {
                    String::new()
                } else {
                    format!(": {detail}")
                }
            ))
        }
    }

    /// Fetches the cache counters.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures and malformed responses.
    pub fn cache_stats(&self) -> Result<CacheStats, String> {
        let v = self.call_json("GET", "/v1/cache/stats", b"")?;
        // The lifecycle counters are absent on pre-lifecycle servers;
        // default rather than fail.
        let opt = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        Ok(CacheStats {
            entries: field(&v, "entries")?,
            loaded: field(&v, "loaded_from_disk")?,
            hits: field(&v, "hits")?,
            misses: field(&v, "misses")?,
            coalesced: field(&v, "coalesced")?,
            fetched: opt("fetched"),
            bytes_appended: field(&v, "bytes_appended")?,
            log_bytes: opt("log_bytes"),
            live_bytes: opt("live_bytes"),
            evicted: opt("evicted"),
            compactions: opt("compactions"),
        })
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures.
    pub fn shutdown(&self) -> Result<(), String> {
        self.call_json("POST", "/v1/shutdown", b"").map(|_| ())
    }

    /// Whether a server is answering at this address.
    pub fn healthy(&self) -> bool {
        self.call_json("GET", "/v1/healthz", b"")
            .map(|v| v.get("ok").and_then(Value::as_bool) == Some(true))
            .unwrap_or(false)
    }

    /// The peer set a sharded server is configured with (self included),
    /// from `/v1/healthz`. Empty for a standalone or pre-sharding server.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures and malformed responses.
    pub fn peers(&self) -> Result<Vec<String>, String> {
        let v = self.call_json("GET", "/v1/healthz", b"")?;
        Ok(v.get("peers")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|p| p.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"tlb_thrash\"\n\
                        [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 1200\nseed = 9\n";

    #[test]
    fn full_client_session() {
        let server = Server::bind("127.0.0.1:0", Some(2), None)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let client = Client::new(server.addr().to_string());
        assert!(client.healthy());

        let job = client.submit(SPEC).expect("submit");
        let view = client.wait(job, Duration::from_secs(60)).expect("wait");
        assert_eq!(view.cells, 2);
        assert_eq!(view.pending, 0);
        let report = client.report(job).expect("report");
        assert!(report.contains("malec_scenario_sweep"));

        let again = client.submit(SPEC).expect("resubmit");
        let view = client.wait(again, Duration::from_secs(60)).expect("wait");
        assert_eq!(
            view.served_without_simulation(),
            view.cells,
            "resubmission must be served from cache"
        );
        let stats = client.cache_stats().expect("stats");
        assert_eq!(stats.entries, 2);
        assert!(stats.hits >= 2);

        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn submit_of_a_bad_spec_reports_the_parser_message() {
        let server = Server::bind("127.0.0.1:0", Some(1), None)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let client = Client::new(server.addr().to_string());
        let err = client
            .submit("[scenario]\nname = \"x\"\n")
            .expect_err("bad spec");
        assert!(err.contains("400"), "{err}");
        assert!(err.contains("phase"), "the parser message travels: {err}");
        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    fn faulty_server(arm: &[(&str, u64, Option<u64>)]) -> crate::server::ServerHandle {
        let faults = crate::fault::Faults::disarmed();
        for &(name, at, param) in arm {
            faults.arm(name, at, param);
        }
        Server::bind_with(
            "127.0.0.1:0",
            crate::server::ServeOptions {
                workers: Some(1),
                faults,
                ..crate::server::ServeOptions::default()
            },
        )
        .expect("bind")
        .spawn()
        .expect("spawn")
    }

    #[test]
    fn backoff_is_capped_deterministic_and_grows() {
        let p = RetryPolicy::retries(8);
        let d1 = p.backoff(1, "/v1/jobs");
        let d2 = p.backoff(2, "/v1/jobs");
        assert_eq!(d1, p.backoff(1, "/v1/jobs"), "same inputs, same delay");
        assert_ne!(
            p.backoff(1, "/v1/jobs"),
            p.backoff(1, "/v1/healthz"),
            "jitter separates concurrent callers"
        );
        assert!(d1 >= Duration::from_millis(50) && d1 <= Duration::from_millis(100));
        assert!(d2 >= Duration::from_millis(100) && d2 <= Duration::from_millis(200));
        for attempt in 1..40 {
            assert!(p.backoff(attempt, "x") <= p.cap, "cap holds at {attempt}");
        }
    }

    #[test]
    fn retry_rides_out_an_injected_500() {
        let server = faulty_server(&[("http.respond.500", 1, None)]);
        let addr = server.addr().to_string();

        // Fail-fast client sees the injected failure...
        let err = Client::new(&addr).cache_stats().expect_err("500 surfaces");
        assert!(err.contains("500"), "{err}");
        // ...a retrying client rides it out. (The failpoint fires exactly
        // once; only the first request is damaged.)
        let server2 = faulty_server(&[("http.respond.500", 1, None)]);
        let addr2 = server2.addr().to_string();
        let client = Client::new(&addr2).with_retry(RetryPolicy::retries(2));
        client.cache_stats().expect("retry recovers");

        for a in [addr, addr2] {
            Client::new(a).shutdown().expect("shutdown");
        }
        server.join().expect("clean exit");
        server2.join().expect("clean exit");
    }

    #[test]
    fn wait_is_terminal_on_failure_and_resubmission_completes() {
        let server = faulty_server(&[("worker.panic", 1, None)]);
        let client = Client::new(server.addr().to_string());

        let job = client.submit(SPEC).expect("submit");
        let view = client.wait(job, Duration::from_secs(60)).expect("wait");
        assert_eq!(view.state, "failed", "wait returned on the failure");
        assert_eq!(view.failed, 1);
        assert!(
            view.error
                .as_deref()
                .is_some_and(|e| e.starts_with("panic:")),
            "{view:?}"
        );

        // The failure consumed the failpoint, so a resubmission completes —
        // and the sibling cell that survived round one is served from cache.
        let view = client
            .wait(
                client.submit(SPEC).expect("resubmit"),
                Duration::from_secs(60),
            )
            .expect("wait");
        assert_eq!(view.state, "done");
        assert_eq!(
            view.served_without_simulation(),
            1,
            "the surviving cell was reused, not re-simulated: {view:?}"
        );

        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn run_to_completion_recovers_from_a_worker_panic() {
        let server = faulty_server(&[("worker.panic", 1, None)]);
        let client = Client::new(server.addr().to_string());
        let view = client
            .run_to_completion(SPEC, Duration::from_secs(60), 1)
            .expect("second submission completes");
        assert_eq!(view.state, "done");
        assert_eq!(view.pending, 0);
        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn poll_cadence_doubles_from_interval_to_max() {
        let p = RetryPolicy::none();
        assert_eq!(p.poll_cadence(0), Duration::from_millis(50));
        assert_eq!(p.poll_cadence(1), Duration::from_millis(100));
        assert_eq!(p.poll_cadence(2), Duration::from_millis(200));
        assert_eq!(p.poll_cadence(3), Duration::from_millis(400));
        assert_eq!(p.poll_cadence(4), Duration::from_millis(500), "capped");
        for polls in 4..64 {
            assert_eq!(p.poll_cadence(polls), p.poll_max, "stays at the cap");
        }
    }

    /// One scripted reply: status, extra headers, body.
    type Reply = (u16, Vec<(&'static str, &'static str)>, &'static str);

    /// A hand-rolled one-route server: answers `replies[i]` to request
    /// `i` (reading each request first), then exits.
    fn scripted_server(replies: Vec<Reply>) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let n = replies.len();
        let handle = std::thread::spawn(move || {
            for (conn, (status, headers, body)) in listener.incoming().take(n).zip(replies) {
                let mut conn = conn.expect("accept");
                let _ = crate::http::read_request_deadline(&conn, Duration::from_secs(5));
                crate::http::write_response_with(
                    &mut conn,
                    status,
                    "application/json",
                    &headers,
                    body.as_bytes(),
                )
                .expect("write response");
            }
        });
        (addr, handle)
    }

    /// A policy whose ceilings are tight enough that an honored-verbatim
    /// day-long Retry-After is unmistakable.
    fn tight_policy() -> RetryPolicy {
        RetryPolicy {
            retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            poll_interval: Duration::from_millis(1),
            poll_max: Duration::from_millis(10),
        }
    }

    #[test]
    fn call_caps_a_hostile_retry_after_at_the_policy_ceiling() {
        // First answer: a 503 claiming `Retry-After: 86400`. Honored
        // verbatim, the retry would sleep a day; capped, it sleeps ≤50 ms
        // and the second answer succeeds.
        let (addr, server) = scripted_server(vec![
            (503, vec![("Retry-After", "86400")], "{}\n"),
            (
                200,
                vec![],
                "{\n  \"entries\": 0,\n  \"loaded_from_disk\": 0,\n  \"hits\": 0,\n  \
                 \"misses\": 0,\n  \"coalesced\": 0,\n  \"bytes_appended\": 0\n}\n",
            ),
        ]);
        let client = Client::new(addr).with_retry(tight_policy());
        let start = Instant::now();
        client.cache_stats().expect("second attempt succeeds");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "a day-long Retry-After must be capped at the policy ceiling, waited {:?}",
            start.elapsed()
        );
        server.join().expect("server thread");
    }

    #[test]
    fn wait_caps_a_hostile_retry_after_at_the_policy_ceiling() {
        // First status poll: shed with a day-long Retry-After. Second:
        // the finished job.
        let (addr, server) = scripted_server(vec![
            (503, vec![("Retry-After", "86400")], "{}\n"),
            (
                200,
                vec![],
                "{\n  \"job\": 1,\n  \"scenario\": \"x\",\n  \"state\": \"done\",\n  \
                 \"cells\": 1,\n  \"simulated\": 1,\n  \"cached\": 0,\n  \"coalesced\": 0,\n  \
                 \"failed\": 0,\n  \"pending\": 0\n}\n",
            ),
        ]);
        let client = Client::new(addr).with_retry(tight_policy());
        let start = Instant::now();
        let view = client.wait(1, Duration::from_secs(30)).expect("wait");
        assert_eq!(view.state, "done");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "a day-long Retry-After must not stall the poll loop, waited {:?}",
            start.elapsed()
        );
        server.join().expect("server thread");
    }

    #[test]
    fn wait_rides_out_a_shed_or_failed_status_poll() {
        // Request 1 is the submit; request 2 — the first status poll — gets
        // an injected 500. A failed *poll* says nothing about the job, so
        // even a fail-fast (no-retry) client must keep polling and return
        // the completed view.
        let server = faulty_server(&[("http.respond.500", 2, None)]);
        let client = Client::new(server.addr().to_string());
        let job = client.submit(SPEC).expect("submit");
        let view = client.wait(job, Duration::from_secs(60)).expect("wait");
        assert_eq!(view.state, "done");
        assert_eq!(view.pending, 0);
        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn run_to_completion_gives_up_after_the_resubmit_budget() {
        // Arm enough panics to defeat one resubmission.
        let server = faulty_server(&[("worker.panic", 1, None), ("worker.panic", 3, None)]);
        let client = Client::new(server.addr().to_string());
        let err = client
            .run_to_completion(SPEC, Duration::from_secs(60), 1)
            .expect_err("both submissions fail");
        assert!(err.contains("after 2 submission(s)"), "{err}");
        assert!(err.contains("panic:"), "{err}");
        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }
}
