//! The client side of the v1 API: one round trip per call, JSON parsed
//! into small typed views. `malec-cli submit` / `status` are thin wrappers
//! over this module, and the integration tests drive servers through it.

use std::time::{Duration, Instant};

use crate::cache::CacheStats;
use crate::http::request;
use crate::json::{parse, Value};

/// A client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

/// A client-side view of one job's status.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job id.
    pub job: u64,
    /// Scenario name.
    pub scenario: String,
    /// `"running"` or `"done"`.
    pub state: String,
    /// Total cells.
    pub cells: u64,
    /// Cells finished by fresh simulation.
    pub simulated: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells attached to a concurrent identical simulation.
    pub coalesced: u64,
    /// Cells still queued or simulating.
    pub pending: u64,
    /// Replicates a CI target saved across the job's cell groups.
    pub replicates_saved: u64,
    /// Submit-to-done wall clock, once finished.
    pub wall_seconds: Option<f64>,
}

impl JobView {
    /// Cells that completed without a simulation of their own.
    pub fn served_without_simulation(&self) -> u64 {
        self.cached + self.coalesced
    }
}

fn field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("response lacks `{key}`: {v:?}"))
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    fn call(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        request(&self.addr, method, path, body)
            .map_err(|e| format!("{method} {} at {}: {e}", path, self.addr))
    }

    fn call_json(&self, method: &str, path: &str, body: &[u8]) -> Result<Value, String> {
        let (status, text) = self.call(method, path, body)?;
        let v = parse(&text).map_err(|e| format!("{path}: malformed response: {e}"))?;
        if (200..300).contains(&status) {
            Ok(v)
        } else {
            let detail = v
                .get("error")
                .and_then(Value::as_str)
                .map_or_else(|| text.clone(), str::to_owned);
            Err(format!("{path}: server returned {status}: {detail}"))
        }
    }

    /// Submits a TOML spec; returns the job id.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures and server-side rejections
    /// (spec parse errors arrive as `400` with the parser's message).
    pub fn submit(&self, spec_toml: &str) -> Result<u64, String> {
        let v = self.call_json("POST", "/v1/jobs", spec_toml.as_bytes())?;
        field(&v, "job")
    }

    /// Fetches one job's status.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures, unknown jobs, and
    /// malformed responses.
    pub fn status(&self, job: u64) -> Result<JobView, String> {
        let v = self.call_json("GET", &format!("/v1/jobs/{job}"), b"")?;
        Ok(JobView {
            job: field(&v, "job")?,
            scenario: v
                .get("scenario")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned(),
            state: v
                .get("state")
                .and_then(Value::as_str)
                .ok_or("response lacks `state`")?
                .to_owned(),
            cells: field(&v, "cells")?,
            simulated: field(&v, "simulated")?,
            cached: field(&v, "cached")?,
            coalesced: field(&v, "coalesced")?,
            pending: field(&v, "pending")?,
            // Absent on pre-replication servers; default rather than fail.
            replicates_saved: v
                .get("replicates_saved")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            wall_seconds: v.get("wall_seconds").and_then(Value::as_f64),
        })
    }

    /// Polls until the job reports `done` (50 ms cadence).
    ///
    /// # Errors
    ///
    /// Propagates status errors and reports a timeout.
    pub fn wait(&self, job: u64, timeout: Duration) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.status(job)?;
            if view.state == "done" {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "job {job} still {} after {timeout:?} ({} of {} cells pending)",
                    view.state, view.pending, view.cells
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Fetches a finished job's report JSON (the `malec-cli run` schema).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown jobs and jobs still running (`409`).
    pub fn report(&self, job: u64) -> Result<String, String> {
        let (status, text) = self.call("GET", &format!("/v1/jobs/{job}/report"), b"")?;
        if status == 200 {
            Ok(text)
        } else {
            Err(format!("report for job {job}: server returned {status}"))
        }
    }

    /// Fetches a finished job's paired-comparison report JSON (the
    /// `malec-cli compare` schema), assembled server-side from the job's
    /// cache-keyed per-replicate cells.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown jobs, jobs still running (`409`), and
    /// jobs with no comparable pair (`400`, with the server's reason).
    pub fn compare(&self, job: u64) -> Result<String, String> {
        let (status, text) = self.call("GET", &format!("/v1/jobs/{job}/compare"), b"")?;
        if status == 200 {
            Ok(text)
        } else {
            let detail = parse(&text)
                .ok()
                .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
                .unwrap_or_default();
            Err(format!(
                "compare for job {job}: server returned {status}{}",
                if detail.is_empty() {
                    String::new()
                } else {
                    format!(": {detail}")
                }
            ))
        }
    }

    /// Fetches the cache counters.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures and malformed responses.
    pub fn cache_stats(&self) -> Result<CacheStats, String> {
        let v = self.call_json("GET", "/v1/cache/stats", b"")?;
        Ok(CacheStats {
            entries: field(&v, "entries")?,
            loaded: field(&v, "loaded_from_disk")?,
            hits: field(&v, "hits")?,
            misses: field(&v, "misses")?,
            coalesced: field(&v, "coalesced")?,
            bytes_appended: field(&v, "bytes_appended")?,
        })
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures.
    pub fn shutdown(&self) -> Result<(), String> {
        self.call_json("POST", "/v1/shutdown", b"").map(|_| ())
    }

    /// Whether a server is answering at this address.
    pub fn healthy(&self) -> bool {
        self.call_json("GET", "/v1/healthz", b"")
            .map(|v| v.get("ok").and_then(Value::as_bool) == Some(true))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"tlb_thrash\"\n\
                        [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 1200\nseed = 9\n";

    #[test]
    fn full_client_session() {
        let server = Server::bind("127.0.0.1:0", Some(2), None)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let client = Client::new(server.addr().to_string());
        assert!(client.healthy());

        let job = client.submit(SPEC).expect("submit");
        let view = client.wait(job, Duration::from_secs(60)).expect("wait");
        assert_eq!(view.cells, 2);
        assert_eq!(view.pending, 0);
        let report = client.report(job).expect("report");
        assert!(report.contains("malec_scenario_sweep"));

        let again = client.submit(SPEC).expect("resubmit");
        let view = client.wait(again, Duration::from_secs(60)).expect("wait");
        assert_eq!(
            view.served_without_simulation(),
            view.cells,
            "resubmission must be served from cache"
        );
        let stats = client.cache_stats().expect("stats");
        assert_eq!(stats.entries, 2);
        assert!(stats.hits >= 2);

        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn submit_of_a_bad_spec_reports_the_parser_message() {
        let server = Server::bind("127.0.0.1:0", Some(1), None)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let client = Client::new(server.addr().to_string());
        let err = client
            .submit("[scenario]\nname = \"x\"\n")
            .expect_err("bad spec");
        assert!(err.contains("400"), "{err}");
        assert!(err.contains("phase"), "the parser message travels: {err}");
        client.shutdown().expect("shutdown");
        server.join().expect("clean exit");
    }
}
