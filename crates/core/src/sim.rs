//! The full-system simulator: configuration + benchmark → [`RunSummary`].
//!
//! One call wires together the workload generator (`malec-trace`), the
//! out-of-order core (`malec-cpu`), the configured L1 data interface (this
//! crate) and the energy model (`malec-energy`), and returns everything the
//! paper's figures need.

use malec_cpu::interface::{AcceptKind, L1DataInterface};
use malec_cpu::OoOCore;
use malec_energy::EnergyModel;
use malec_trace::profile::BenchmarkProfile;
use malec_trace::{TraceInst, WorkloadGenerator};
use malec_types::config::{InterfaceKind, SimConfig};
use malec_types::op::{MemOp, OpId};

use crate::baseline::BaselineInterface;
use crate::malec::MalecInterface;
use crate::metrics::RunSummary;

/// Either interface implementation, dispatched by configuration.
///
/// Both variants are boxed: the interfaces are hundreds of bytes of
/// configuration and buffers, and the enum is moved through `OoOCore`.
#[derive(Debug)]
pub enum AnyInterface {
    /// One of the two Table I baselines.
    Baseline(Box<BaselineInterface>),
    /// The MALEC interface.
    Malec(Box<MalecInterface>),
}

impl AnyInterface {
    /// Builds the interface matching `config.interface`.
    pub fn for_config(config: &SimConfig, seed: u64) -> Self {
        match config.interface {
            InterfaceKind::Malec => {
                AnyInterface::Malec(Box::new(MalecInterface::new(config, seed)))
            }
            _ => AnyInterface::Baseline(Box::new(BaselineInterface::new(config, seed))),
        }
    }
}

impl L1DataInterface for AnyInterface {
    fn tick(&mut self, cycle: u64, completed: &mut Vec<OpId>) {
        match self {
            AnyInterface::Baseline(b) => b.tick(cycle, completed),
            AnyInterface::Malec(m) => m.tick(cycle, completed),
        }
    }

    fn offer_load(&mut self, op: MemOp) -> AcceptKind {
        match self {
            AnyInterface::Baseline(b) => b.offer_load(op),
            AnyInterface::Malec(m) => m.offer_load(op),
        }
    }

    fn offer_store(&mut self, op: MemOp) -> AcceptKind {
        match self {
            AnyInterface::Baseline(b) => b.offer_store(op),
            AnyInterface::Malec(m) => m.offer_store(op),
        }
    }

    fn commit_store(&mut self, id: OpId) {
        match self {
            AnyInterface::Baseline(b) => b.commit_store(id),
            AnyInterface::Malec(m) => m.commit_store(id),
        }
    }

    fn pending_loads(&self) -> usize {
        match self {
            AnyInterface::Baseline(b) => b.pending_loads(),
            AnyInterface::Malec(m) => m.pending_loads(),
        }
    }
}

/// The top-level simulator for one configuration.
///
/// # Example
///
/// ```
/// use malec_core::sim::Simulator;
/// use malec_trace::all_benchmarks;
/// use malec_types::SimConfig;
///
/// let sim = Simulator::new(SimConfig::base1ldst());
/// let summary = sim.run(&all_benchmarks()[0], 10_000, 42);
/// assert_eq!(summary.config, "Base1ldst");
/// assert!(summary.cycles() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation — configurations in
    /// this workspace are constructed from [`SimConfig`] presets, so an
    /// invalid one is a programming error.
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("valid simulation configuration");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `insts` instructions of `profile` with the given seed and
    /// returns the complete summary.
    pub fn run(&self, profile: &BenchmarkProfile, insts: u64, seed: u64) -> RunSummary {
        let trace = WorkloadGenerator::new(profile, seed).take(insts as usize);
        self.run_trace(profile.name, profile.suite.name(), trace, seed)
    }

    /// Runs an arbitrary instruction stream — a scenario generator, a
    /// replayed `.mtr` trace, or anything else that yields [`TraceInst`] —
    /// under this configuration. `seed` only feeds the *interface's*
    /// replacement/placement randomness, so the same trace and seed produce
    /// bit-identical summaries no matter how the trace was obtained.
    pub fn run_trace(
        &self,
        name: impl Into<String>,
        suite: &'static str,
        trace: impl Iterator<Item = TraceInst>,
        seed: u64,
    ) -> RunSummary {
        let interface = AnyInterface::for_config(&self.config, seed ^ 0x5eed);
        let mut core = OoOCore::new(&self.config, interface);
        let core_stats = core.run(trace);
        let interface = core.into_interface();

        let (iface_stats, counters, l1_miss, l2_miss, utlb) = match &interface {
            AnyInterface::Baseline(b) => (
                *b.stats(),
                *b.counters(),
                b.hierarchy().l1().miss_rate(),
                b.hierarchy().backing().l2_miss_rate(),
                b.mmu().utlb_stats(),
            ),
            AnyInterface::Malec(m) => (
                *m.stats(),
                *m.counters(),
                m.hierarchy().l1().miss_rate(),
                m.hierarchy().backing().l2_miss_rate(),
                m.mmu().utlb_stats(),
            ),
        };
        let energy = EnergyModel::for_config(&self.config).evaluate(&counters, core_stats.cycles);
        let utlb_total = utlb.0 + utlb.1;
        RunSummary {
            config: self.config.label(),
            benchmark: name.into(),
            suite,
            core: core_stats,
            interface: iface_stats,
            counters,
            energy,
            l1_miss_rate: l1_miss,
            l2_miss_rate: l2_miss,
            utlb_miss_rate: if utlb_total == 0 {
                0.0
            } else {
                utlb.1 as f64 / utlb_total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::all_benchmarks;

    fn bench(name: &str) -> BenchmarkProfile {
        all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    #[test]
    fn all_three_interfaces_complete_a_run() {
        let gzip = bench("gzip");
        for cfg in [
            SimConfig::base1ldst(),
            SimConfig::base2ld1st(),
            SimConfig::malec(),
        ] {
            let s = Simulator::new(cfg).run(&gzip, 5_000, 3);
            assert_eq!(s.core.committed, 5_000, "{}", s.config);
            assert!(s.core.ipc() > 0.1, "{}: ipc {}", s.config, s.core.ipc());
            assert!(s.energy.dynamic > 0.0);
            assert!(s.energy.leakage > 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let gzip = bench("gzip");
        let sim = Simulator::new(SimConfig::malec());
        let a = sim.run(&gzip, 4_000, 9);
        let b = sim.run(&gzip, 4_000, 9);
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.interface, b.interface);
    }

    #[test]
    fn malec_beats_base1_on_a_parallel_workload() {
        let djpeg = bench("djpeg");
        let base = Simulator::new(SimConfig::base1ldst()).run(&djpeg, 20_000, 5);
        let malec = Simulator::new(SimConfig::malec()).run(&djpeg, 20_000, 5);
        assert!(
            malec.core.cycles < base.core.cycles,
            "MALEC {} vs Base1 {}",
            malec.core.cycles,
            base.core.cycles
        );
    }

    #[test]
    fn malec_uses_fewer_translations_than_base2() {
        let gzip = bench("gzip");
        let base2 = Simulator::new(SimConfig::base2ld1st()).run(&gzip, 10_000, 5);
        let malec = Simulator::new(SimConfig::malec()).run(&gzip, 10_000, 5);
        // Page grouping shares one translation across each group and lets
        // same-page stores ride along; the saving is bounded by how many
        // same-page references coincide in the Input Buffer.
        assert!(
            (malec.counters.utlb_lookups as f64) < 0.85 * base2.counters.utlb_lookups as f64,
            "page grouping must cut translations: {} vs {}",
            malec.counters.utlb_lookups,
            base2.counters.utlb_lookups
        );
    }

    #[test]
    fn way_determination_covers_most_accesses() {
        let gzip = bench("gzip");
        let s = Simulator::new(SimConfig::malec()).run(&gzip, 30_000, 5);
        assert!(
            s.interface.coverage() > 0.7,
            "coverage should be high on a cache-friendly benchmark: {}",
            s.interface.coverage()
        );
    }

    #[test]
    fn mcf_has_outlier_miss_rate() {
        let mcf = Simulator::new(SimConfig::malec()).run(&bench("mcf"), 15_000, 5);
        let gzip = Simulator::new(SimConfig::malec()).run(&bench("gzip"), 15_000, 5);
        assert!(
            mcf.l1_miss_rate > 4.0 * gzip.l1_miss_rate,
            "mcf {} vs gzip {}",
            mcf.l1_miss_rate,
            gzip.l1_miss_rate
        );
    }
}
