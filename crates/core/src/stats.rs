//! Streaming replicate statistics: Welford accumulation, t-based 95 %
//! confidence intervals, and the replication policy (fixed seed counts or
//! CI-driven early stopping).
//!
//! Every headline number of the paper reproduction used to be a single
//! seeded draw per cell; this module is what turns a cell into a
//! *distribution*. A [`Welford`] accumulator ingests one metric value per
//! replicate in a single numerically stable pass (no stored sample vector,
//! no cancellation-prone `Σx²`), and [`Welford::ci95_half_width`] prices the
//! uncertainty with the two-sided Student-t 95 % quantile, so small
//! replicate counts get honestly wide intervals instead of the normal
//! approximation's false confidence.
//!
//! [`Replication`] is the shared policy object the sweep drivers
//! (`ParameterSweep::run_source_replicated`, `malec-cli run`, the
//! `malec-serve` scheduler) consult: how many replicates to launch up
//! front, and — given the replicate summaries produced so far, in replicate
//! order — whether the target metric's relative CI half-width has fallen
//! below `ci_target` so the remaining replicates can be skipped. The
//! decision is a pure function of the ordered replicate prefix, so serial
//! and parallel drivers stop at exactly the same replicate count.

use crate::metrics::RunSummary;
pub use malec_trace::seed::{replicate_seed, splitmix64};

/// Two-sided Student-t 97.5 % quantiles for 1–30 degrees of freedom
/// (`t_{0.975, df}`), the standard table values.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// `t_{0.975, df}` — exact table values through 30 degrees of freedom,
/// then conservative steps: each bracket returns the quantile at its
/// **smallest** df (2.042 is `t_{0.975,30}`, 2.021 is df 40, 2.000 is df
/// 60, 1.980 is df 120), and the true quantile decreases in df, so the
/// returned value is never *smaller* than the true one — intervals never
/// understate uncertainty.
#[must_use]
pub fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95[(df - 1) as usize],
        31..=40 => 2.042,
        41..=60 => 2.021,
        61..=120 => 2.000,
        _ => 1.980,
    }
}

/// Why a statistic cannot be produced from the samples seen so far.
/// Small-sample queries return this instead of `NaN` (or a silently wrong
/// sentinel), so every caller decides explicitly what an undefined interval
/// or extremum means for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StatError {
    /// No observations at all: min/max/mean carry no information.
    Empty,
    /// Exactly one observation: extrema and means exist, but anything
    /// involving spread (variance, CIs) is undefined.
    OneSample,
}

impl std::fmt::Display for StatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatError::Empty => f.write_str("no samples (need at least 1)"),
            StatError::OneSample => f.write_str("one sample carries no spread (need at least 2)"),
        }
    }
}

impl std::error::Error for StatError {}

/// Streaming mean/variance/min/max over one metric, one value per
/// replicate (Welford's online algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation.
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`None` below two observations).
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation (`None` below two observations).
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Half-width of the t-based 95 % confidence interval on the mean:
    /// `t_{0.975, n-1} · s / √n`. `None` below two observations (one draw
    /// carries no width information).
    #[must_use]
    pub fn ci95_half_width(&self) -> Option<f64> {
        let s = self.std_dev()?;
        Some(t95(self.n - 1) * s / (self.n as f64).sqrt())
    }

    /// The 95 % CI half-width relative to the mean's magnitude — the
    /// early-stopping criterion. `None` below two observations or when the
    /// mean is (numerically) zero, in which case a relative target can
    /// never be certified.
    #[must_use]
    pub fn relative_ci95(&self) -> Option<f64> {
        let hw = self.ci95_half_width()?;
        let m = self.mean.abs();
        (m > f64::EPSILON).then(|| hw / m)
    }

    /// Which [`StatError`] the current sample count implies for a
    /// statistic needing `need` observations (1 for extrema, 2 for spread).
    fn short_of(&self, need: u64) -> StatError {
        debug_assert!(self.n < need);
        if self.n == 0 {
            StatError::Empty
        } else {
            StatError::OneSample
        }
    }

    /// [`Self::min`] with the failure mode spelled out: `Err(Empty)` for an
    /// empty accumulator, never `NaN`.
    ///
    /// # Errors
    ///
    /// [`StatError::Empty`] with no observations.
    pub fn try_min(&self) -> Result<f64, StatError> {
        self.min().ok_or(StatError::Empty)
    }

    /// [`Self::max`] with the failure mode spelled out: `Err(Empty)` for an
    /// empty accumulator, never `NaN`.
    ///
    /// # Errors
    ///
    /// [`StatError::Empty`] with no observations.
    pub fn try_max(&self) -> Result<f64, StatError> {
        self.max().ok_or(StatError::Empty)
    }

    /// [`Self::ci95_half_width`] with the failure mode spelled out:
    /// `Err(Empty)` for zero samples, `Err(OneSample)` for one (a single
    /// draw has no interval), never `NaN` and never an infinite width.
    ///
    /// # Errors
    ///
    /// [`StatError::Empty`] / [`StatError::OneSample`] below two
    /// observations.
    pub fn try_ci95(&self) -> Result<f64, StatError> {
        self.ci95_half_width().ok_or_else(|| self.short_of(2))
    }
}

/// The convergence metric a CI target applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CiMetric {
    /// Instructions per cycle (the performance headline).
    #[default]
    Ipc,
    /// Total priced energy per memory access (the energy headline).
    EnergyPerAccess,
}

impl CiMetric {
    /// The spec-language name of this metric.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CiMetric::Ipc => "ipc",
            CiMetric::EnergyPerAccess => "energy_per_access",
        }
    }

    /// Parses the spec-language name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ipc" => Some(CiMetric::Ipc),
            "energy_per_access" => Some(CiMetric::EnergyPerAccess),
            _ => None,
        }
    }

    /// Extracts this metric from one replicate's summary.
    #[must_use]
    pub fn extract(&self, s: &RunSummary) -> f64 {
        match self {
            CiMetric::Ipc => s.core.ipc(),
            CiMetric::EnergyPerAccess => energy_per_access(s),
        }
    }
}

/// Total priced energy divided by committed memory accesses (loads +
/// stores); 0 for a run with no memory traffic.
#[must_use]
pub fn energy_per_access(s: &RunSummary) -> f64 {
    let accesses = s.core.loads + s.core.stores;
    if accesses == 0 {
        0.0
    } else {
        s.energy.total() / accesses as f64
    }
}

/// How a sweep replicates each cell: how many seeds, and whether a CI
/// target may stop a cell early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Replication {
    /// Maximum replicates per cell (the spec's `seeds`; ≥ 1).
    pub seeds: u32,
    /// Replicates always run before early stopping may engage (≥ 2 when a
    /// CI target is set — one draw has no interval).
    pub min_seeds: u32,
    /// Relative 95 % CI half-width target on [`Self::metric`]; `None`
    /// disables early stopping (all `seeds` replicates run).
    pub ci_target: Option<f64>,
    /// Metric the CI target applies to.
    pub metric: CiMetric,
}

impl Replication {
    /// The legacy single-seed behavior: one replicate, no early stopping.
    #[must_use]
    pub fn single() -> Self {
        Self::fixed(1)
    }

    /// Exactly `seeds` replicates, no early stopping.
    #[must_use]
    pub fn fixed(seeds: u32) -> Self {
        Self {
            seeds: seeds.max(1),
            min_seeds: seeds.max(1),
            ci_target: None,
            metric: CiMetric::default(),
        }
    }

    /// Whether any cell may carry more than one replicate.
    #[must_use]
    pub fn replicated(&self) -> bool {
        self.seeds > 1
    }

    /// Replicates every cell launches up front: all of them without a CI
    /// target, the mandatory minimum with one.
    #[must_use]
    pub fn initial_count(&self) -> u32 {
        if self.ci_target.is_some() {
            self.min_seeds.min(self.seeds)
        } else {
            self.seeds
        }
    }

    /// Given the replicate summaries completed so far **in replicate
    /// order**, whether this cell should stop spawning replicates. Pure in
    /// its inputs: serial and parallel drivers reach identical counts.
    #[must_use]
    pub fn converged<'a>(&self, replicates: impl IntoIterator<Item = &'a RunSummary>) -> bool {
        let mut w = Welford::new();
        for s in replicates {
            w.push(self.metric.extract(s));
        }
        if w.count() >= u64::from(self.seeds) {
            return true;
        }
        let Some(target) = self.ci_target else {
            return false;
        };
        if w.count() < u64::from(self.min_seeds) {
            return false;
        }
        w.relative_ci95().is_some_and(|rel| rel <= target)
    }
}

/// One metric's replicate distribution, as reported.
#[derive(Clone, Copy, Debug)]
pub struct MetricSummary {
    /// Mean over the replicates.
    pub mean: f64,
    /// t-based 95 % CI half-width (`None` for a single replicate).
    pub ci95: Option<f64>,
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
}

impl MetricSummary {
    fn from(w: &Welford) -> Self {
        Self {
            mean: w.mean(),
            ci95: w.ci95_half_width(),
            min: w.min().unwrap_or(0.0),
            max: w.max().unwrap_or(0.0),
        }
    }
}

/// The metric names [`ReplicateStats`] reports, in report order.
pub const REPORTED_METRICS: [&str; 8] = [
    "ipc",
    "cycles",
    "l1_miss_rate",
    "utlb_miss_rate",
    "coverage",
    "merge_ratio",
    "energy_total",
    "energy_per_access",
];

/// One extractor per [`REPORTED_METRICS`] entry, in the same order — the
/// single definition both the marginal aggregation
/// ([`ReplicateStats::from_replicates`]) and the paired comparison
/// (`malec_core::compare`) fold replicates through, so a delta is always
/// the difference of exactly the numbers the marginal report shows.
#[must_use]
pub fn reported_extractors() -> [fn(&RunSummary) -> f64; 8] {
    [
        |s| s.core.ipc(),
        |s| s.core.cycles as f64,
        |s| s.l1_miss_rate,
        |s| s.utlb_miss_rate,
        |s| s.interface.coverage(),
        |s| s.interface.merge_ratio(),
        |s| s.energy.total(),
        energy_per_access,
    ]
}

/// Whether larger values of a reported metric are better (IPC, coverage,
/// merge ratio) or worse (cycles, miss rates, energy) — the orientation a
/// win/loss verdict on a delta needs.
#[must_use]
pub fn higher_is_better(metric: &str) -> bool {
    matches!(metric, "ipc" | "coverage" | "merge_ratio")
}

/// Per-metric replicate statistics of one cell, plus the replication
/// bookkeeping (how many seeds ran, how many an early stop saved).
#[derive(Clone, Debug)]
pub struct ReplicateStats {
    /// Replicates aggregated.
    pub n: u32,
    /// Replicates an early stop skipped (`seeds - n`; 0 without a CI
    /// target).
    pub saved: u32,
    /// `(metric name, distribution)` in [`REPORTED_METRICS`] order.
    pub metrics: Vec<(&'static str, MetricSummary)>,
}

impl ReplicateStats {
    /// Aggregates `replicates` (all of one cell, in replicate order).
    /// `seeds` is the spec's maximum, pricing how many replicates early
    /// stopping saved.
    ///
    /// # Panics
    ///
    /// Panics on an empty replicate set — a cell with zero replicates is a
    /// driver bug.
    #[must_use]
    pub fn from_replicates(replicates: &[RunSummary], seeds: u32) -> Self {
        assert!(!replicates.is_empty(), "a cell has at least one replicate");
        let extract = reported_extractors();
        let mut accs = [Welford::new(); 8];
        for s in replicates {
            for (acc, f) in accs.iter_mut().zip(&extract) {
                acc.push(f(s));
            }
        }
        let n = replicates.len() as u32;
        Self {
            n,
            saved: seeds.saturating_sub(n),
            metrics: REPORTED_METRICS
                .iter()
                .zip(&accs)
                .map(|(&name, w)| (name, MetricSummary::from(w)))
                .collect(),
        }
    }

    /// The summary of one reported metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use malec_types::SimConfig;
    use proptest::prelude::*;

    /// Naive two-pass mean/variance for cross-checking Welford.
    fn two_pass(xs: &[f64]) -> (f64, Option<f64>) {
        let n = xs.len() as f64;
        if xs.is_empty() {
            return (0.0, None);
        }
        let mean = xs.iter().sum::<f64>() / n;
        if xs.len() < 2 {
            return (mean, None);
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, Some(var))
    }

    #[test]
    fn welford_matches_two_pass_on_fixed_samples() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var) = two_pass(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance().unwrap() - var.unwrap()).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert_eq!(w.count(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Welford agrees with the naive two-pass computation on arbitrary
        /// samples (within floating-point slack scaled to the magnitude).
        fn welford_matches_two_pass(raw in proptest::collection::vec(0u64..1_000_000, 2..40)) {
            let xs: Vec<f64> = raw.iter().map(|&v| v as f64 / 997.0 - 300.0).collect();
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            let (mean, var) = two_pass(&xs);
            let scale = xs.iter().map(|x| x.abs()).fold(1.0, f64::max);
            prop_assert!((w.mean() - mean).abs() <= 1e-9 * scale, "mean {} vs {}", w.mean(), mean);
            let var = var.unwrap();
            prop_assert!(
                (w.variance().unwrap() - var).abs() <= 1e-9 * scale * scale,
                "variance {} vs {var}",
                w.variance().unwrap()
            );
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(w.min().unwrap().to_bits(), min.to_bits());
            prop_assert_eq!(w.max().unwrap().to_bits(), max.to_bits());
        }
    }

    #[test]
    fn ci_widths_match_the_t_table() {
        // n = 2 (df 1): half-width = 12.706 · s / √2.
        let mut w = Welford::new();
        w.push(0.0);
        w.push(2.0); // mean 1, s = √2
        let want = 12.706 * std::f64::consts::SQRT_2 / std::f64::consts::SQRT_2;
        assert!((w.ci95_half_width().unwrap() - want).abs() < 1e-9);

        // n = 5 (df 4): t = 2.776.
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        // s = √2.5 for 1..5.
        let want = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((w.ci95_half_width().unwrap() - want).abs() < 1e-9);

        // Table endpoints and the conservative step-down: each bracket
        // carries its lower-df (larger) quantile, so the step value is
        // always >= the true t — e.g. t_{0.975,31} = 2.0395 < t95(31).
        assert_eq!(t95(1), 12.706);
        assert_eq!(t95(4), 2.776);
        assert_eq!(t95(29), 2.045);
        assert_eq!(t95(30), 2.042);
        assert_eq!(t95(31), 2.042);
        assert!(t95(31) > 2.0395, "never below the true quantile");
        assert_eq!(t95(50), 2.021);
        assert!(t95(41) > 2.0195);
        assert_eq!(t95(100), 2.000);
        assert_eq!(t95(10_000), 1.980);
        assert!(t95(10_000) > 1.960, "stays above the infinite-df limit");
        // The quantile never increases with df (conservatism of the steps).
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            assert!(t95(df) <= prev, "t95 must be non-increasing at df={df}");
            prev = t95(df);
        }
    }

    #[test]
    fn single_observation_has_no_interval() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert!(w.variance().is_none());
        assert!(w.ci95_half_width().is_none());
        assert!(w.relative_ci95().is_none());
        assert_eq!(w.mean(), 3.5);
    }

    /// Pins the small-sample contract: n = 0 and n = 1 queries are
    /// well-defined *errors* — never `NaN`, never an infinite or sentinel
    /// width that a report would happily print.
    #[test]
    fn empty_and_single_sample_queries_are_errors_not_nan() {
        let empty = Welford::new();
        assert_eq!(empty.try_min(), Err(StatError::Empty));
        assert_eq!(empty.try_max(), Err(StatError::Empty));
        assert_eq!(empty.try_ci95(), Err(StatError::Empty));
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert!(!empty.mean().is_nan(), "empty mean is 0, not NaN");
        assert_eq!(empty.mean(), 0.0);

        let mut one = Welford::new();
        one.push(7.25);
        assert_eq!(one.try_min(), Ok(7.25), "one sample has an extremum");
        assert_eq!(one.try_max(), Ok(7.25));
        assert_eq!(one.try_ci95(), Err(StatError::OneSample));
        assert!(one.variance().is_none(), "spread needs two samples");
        // The error values explain themselves (they reach spec users).
        assert!(StatError::Empty.to_string().contains("no samples"));
        assert!(StatError::OneSample.to_string().contains("at least 2"));
    }

    #[test]
    fn metric_orientation_covers_every_reported_metric() {
        // Exactly the throughput-style metrics count up; everything else
        // (latency, miss rates, energy) counts down.
        let up: Vec<&str> = REPORTED_METRICS
            .iter()
            .copied()
            .filter(|m| higher_is_better(m))
            .collect();
        assert_eq!(up, ["ipc", "coverage", "merge_ratio"]);
        assert!(!higher_is_better("energy_per_access"));
        assert_eq!(reported_extractors().len(), REPORTED_METRICS.len());
    }

    #[test]
    fn zero_mean_never_certifies_a_relative_target() {
        let mut w = Welford::new();
        w.push(-1.0);
        w.push(1.0);
        assert!(w.relative_ci95().is_none());
    }

    fn replicates(n: u32) -> Vec<RunSummary> {
        let gzip = malec_trace::benchmark_named("gzip").expect("gzip exists");
        let sim = Simulator::new(SimConfig::malec());
        (0..n)
            .map(|i| sim.run(&gzip, 2_000, replicate_seed(41, i)))
            .collect()
    }

    #[test]
    fn replication_policy_is_a_pure_prefix_function() {
        let rep = Replication {
            seeds: 8,
            min_seeds: 3,
            ci_target: Some(0.5), // generous: converges at the minimum
            metric: CiMetric::Ipc,
        };
        assert_eq!(rep.initial_count(), 3);
        let all = replicates(8);
        assert!(!rep.converged(&all[..2]), "below min_seeds never stops");
        let at_min = rep.converged(&all[..3]);
        assert_eq!(
            rep.converged(&all[..3]),
            at_min,
            "pure: same prefix, same answer"
        );
        assert!(rep.converged(&all), "the seed cap always stops");

        let fixed = Replication::fixed(4);
        assert_eq!(fixed.initial_count(), 4);
        assert!(!fixed.converged(&all[..3]));
        assert!(fixed.converged(&all[..4]));
        assert!(!Replication::single().replicated());
    }

    #[test]
    fn replicate_stats_aggregate_every_reported_metric() {
        let reps = replicates(4);
        let stats = ReplicateStats::from_replicates(&reps, 8);
        assert_eq!(stats.n, 4);
        assert_eq!(stats.saved, 4);
        assert_eq!(stats.metrics.len(), REPORTED_METRICS.len());
        let ipc = stats.metric("ipc").expect("ipc reported");
        assert!(ipc.min <= ipc.mean && ipc.mean <= ipc.max);
        assert!(ipc.ci95.is_some());
        let mut w = Welford::new();
        for s in &reps {
            w.push(s.core.ipc());
        }
        assert_eq!(
            ipc.mean.to_bits(),
            w.mean().to_bits(),
            "same accumulation path"
        );
        assert!(stats.metric("energy_per_access").unwrap().mean > 0.0);
        assert!(stats.metric("nope").is_none());
    }

    #[test]
    fn metric_extraction_names_roundtrip() {
        for m in [CiMetric::Ipc, CiMetric::EnergyPerAccess] {
            assert_eq!(CiMetric::parse(m.name()), Some(m));
        }
        assert_eq!(CiMetric::parse("cycles"), None);
        let s = &replicates(1)[0];
        assert!(CiMetric::Ipc.extract(s) > 0.0);
        assert!(CiMetric::EnergyPerAccess.extract(s) > 0.0);
    }
}
