//! Segmented way table — the Sec. VI-D extension.
//!
//! Wider pages increase the number of lines per WT entry (a 64 KiB page
//! would need 1024 × 2 bits per entry). The paper suggests: *"the WT itself
//! might be segmented. By allocating and replacing WT chunks in a FIFO or
//! LRU manner, their number could be smaller than required to represent
//! full pages."*
//!
//! [`SegmentedWayTable`] implements exactly that: way information is stored
//! in fixed-size *chunks* of consecutive lines, allocated on demand from a
//! bounded pool and recycled FIFO. A page therefore only pays storage for
//! the line ranges it actually touches, and total storage is a hard budget
//! independent of page size.

use malec_types::addr::{PPageId, WayId};

use crate::waytable::WaySlots;

/// Identifier of a line range within a page: `line_in_page / chunk_lines`.
type ChunkIndex = u32;

#[derive(Clone, Debug)]
struct Chunk {
    page: PPageId,
    index: ChunkIndex,
    slots: WaySlots,
}

/// A way table assembled from FIFO-recycled chunks of consecutive lines.
///
/// # Example
///
/// ```
/// use malec_core::segmented_wt::SegmentedWayTable;
/// use malec_types::addr::{PPageId, WayId};
///
/// // 16 chunks of 16 lines each, for 4-bank/4-way geometry.
/// let mut wt = SegmentedWayTable::new(16, 16, 4, 4);
/// let page = PPageId::new(7);
/// assert_eq!(wt.get(page, 3), None);
/// wt.set(page, 3, WayId(1));
/// assert_eq!(wt.get(page, 3), Some(WayId(1)));
/// ```
#[derive(Clone, Debug)]
pub struct SegmentedWayTable {
    chunks: Vec<Chunk>,
    capacity: usize,
    chunk_lines: u32,
    banks: u32,
    ways: u32,
    fifo_next: usize,
    allocations: u64,
    recycles: u64,
}

impl SegmentedWayTable {
    /// Creates a table with a budget of `capacity` chunks of `chunk_lines`
    /// consecutive lines each, for a cache with `banks` banks and `ways`
    /// ways.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `ways < 2`.
    pub fn new(capacity: usize, chunk_lines: u32, banks: u32, ways: u32) -> Self {
        assert!(capacity > 0 && chunk_lines > 0, "need a chunk budget");
        assert!(banks > 0 && ways >= 2, "degenerate cache geometry");
        Self {
            chunks: Vec::with_capacity(capacity),
            capacity,
            chunk_lines,
            banks,
            ways,
            fifo_next: 0,
            allocations: 0,
            recycles: 0,
        }
    }

    /// Chunk budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lines covered by one chunk.
    pub fn chunk_lines(&self) -> u32 {
        self.chunk_lines
    }

    /// Total storage bits (2 bits per line per allocated-capacity chunk),
    /// for energy modelling.
    pub fn storage_bits(&self) -> u64 {
        2 * u64::from(self.chunk_lines) * self.capacity as u64
    }

    fn chunk_of(&self, line_in_page: u32) -> ChunkIndex {
        line_in_page / self.chunk_lines
    }

    fn find(&self, page: PPageId, index: ChunkIndex) -> Option<usize> {
        self.chunks
            .iter()
            .position(|c| c.page == page && c.index == index)
    }

    /// Way information for `line_in_page` of `page`; `None` when unknown or
    /// the covering chunk is not resident.
    pub fn get(&self, page: PPageId, line_in_page: u32) -> Option<WayId> {
        let idx = self.chunk_of(line_in_page);
        let pos = self.find(page, idx)?;
        self.chunks[pos]
            .slots
            .get((line_in_page % self.chunk_lines) as u8)
    }

    /// Records that `line_in_page` of `page` resides in `way`, allocating
    /// (or FIFO-recycling) the covering chunk if needed. Returns `false`
    /// when the way is the line's excluded way and stays unknown.
    pub fn set(&mut self, page: PPageId, line_in_page: u32, way: WayId) -> bool {
        let index = self.chunk_of(line_in_page);
        let pos = match self.find(page, index) {
            Some(pos) => pos,
            None => self.allocate(page, index),
        };
        // The excluded-way rotation must follow the line's position in the
        // *page*, not in the chunk, so compute it on page coordinates and
        // translate. WaySlots rotates by (line / banks) % ways; a chunk
        // whose base is a multiple of banks*ways preserves the rotation;
        // we guarantee that by sizing chunks in multiples of banks.
        let local = (line_in_page % self.chunk_lines) as u8;
        let page_excluded = WayId(((line_in_page / self.banks) % self.ways) as u8);
        if way == page_excluded {
            self.chunks[pos].slots.clear(local);
            return false;
        }
        // Local rotation may differ from the page rotation when chunk_lines
        // is not a multiple of banks*ways; store via the local coordinate's
        // codec only when their excluded ways agree, else keep unknown.
        let entry = &mut self.chunks[pos].slots;
        if entry.excluded_way(local) == page_excluded {
            entry.set(local, way)
        } else {
            entry.clear(local);
            false
        }
    }

    /// Invalidates `line_in_page` of `page` (cache eviction); a miss in the
    /// chunk pool is a no-op (information already lost).
    pub fn clear(&mut self, page: PPageId, line_in_page: u32) {
        let index = self.chunk_of(line_in_page);
        if let Some(pos) = self.find(page, index) {
            self.chunks[pos]
                .slots
                .clear((line_in_page % self.chunk_lines) as u8);
        }
    }

    /// Drops every chunk of `page` (TLB eviction of the page).
    pub fn invalidate_page(&mut self, page: PPageId) {
        self.chunks.retain(|c| c.page != page);
        self.fifo_next = self.fifo_next.min(self.chunks.len().saturating_sub(1));
    }

    fn allocate(&mut self, page: PPageId, index: ChunkIndex) -> usize {
        self.allocations += 1;
        let slots = WaySlots::new(self.chunk_lines, self.banks, self.ways);
        if self.chunks.len() < self.capacity {
            self.chunks.push(Chunk { page, index, slots });
            return self.chunks.len() - 1;
        }
        // FIFO recycle.
        self.recycles += 1;
        let pos = self.fifo_next % self.chunks.len();
        self.fifo_next = (self.fifo_next + 1) % self.capacity;
        self.chunks[pos] = Chunk { page, index, slots };
        pos
    }

    /// Chunks allocated over the lifetime (including recycles).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Chunks recycled because the budget was exhausted.
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Currently resident chunks.
    pub fn resident(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> SegmentedWayTable {
        // 16-line chunks on the paper's 4-bank, 4-way geometry: chunk base
        // offsets are multiples of banks*ways so the rotation aligns.
        SegmentedWayTable::new(8, 16, 4, 4)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut wt = table();
        let p = PPageId::new(3);
        assert!(wt.set(p, 5, WayId(0)));
        assert_eq!(wt.get(p, 5), Some(WayId(0)));
        assert_eq!(wt.get(p, 6), None, "other lines stay unknown");
        assert_eq!(wt.get(PPageId::new(4), 5), None, "other pages unknown");
    }

    #[test]
    fn excluded_way_follows_page_rotation() {
        let mut wt = table();
        let p = PPageId::new(1);
        // Line 21: excluded way = (21 / 4) % 4 = 1. Chunk 1, local 5:
        // local excluded = (5 / 4) % 4 = 1 — consistent by construction.
        assert!(!wt.set(p, 21, WayId(1)));
        assert_eq!(wt.get(p, 21), None);
        assert!(wt.set(p, 21, WayId(2)));
        assert_eq!(wt.get(p, 21), Some(WayId(2)));
    }

    #[test]
    fn only_touched_ranges_cost_chunks() {
        let mut wt = table();
        let p = PPageId::new(9);
        wt.set(p, 0, WayId(1)); // chunk 0
        wt.set(p, 1, WayId(1)); // chunk 0 again
        wt.set(p, 60, WayId(1)); // chunk 3
        assert_eq!(wt.resident(), 2);
        assert_eq!(wt.allocations(), 2);
    }

    #[test]
    fn fifo_recycling_under_pressure() {
        let mut wt = table(); // capacity 8 chunks
        for page in 0..10u64 {
            wt.set(PPageId::new(page), 0, WayId(1));
        }
        assert_eq!(wt.resident(), 8);
        assert_eq!(wt.recycles(), 2);
        // The first two pages' chunks were recycled.
        assert_eq!(wt.get(PPageId::new(0), 0), None);
        assert_eq!(wt.get(PPageId::new(1), 0), None);
        assert_eq!(wt.get(PPageId::new(9), 0), Some(WayId(1)));
    }

    #[test]
    fn clear_and_invalidate_page() {
        let mut wt = table();
        let p = PPageId::new(2);
        wt.set(p, 8, WayId(0));
        wt.set(p, 40, WayId(0));
        wt.clear(p, 8);
        assert_eq!(wt.get(p, 8), None);
        assert_eq!(wt.get(p, 40), Some(WayId(0)));
        wt.invalidate_page(p);
        assert_eq!(wt.get(p, 40), None);
        assert_eq!(wt.resident(), 0);
    }

    #[test]
    fn storage_budget_is_page_size_independent() {
        // A 64 KiB page has 1024 lines; a full-page WT entry would need
        // 2048 bits. The segmented table's budget stays fixed.
        let wt = SegmentedWayTable::new(16, 16, 4, 4);
        assert_eq!(wt.storage_bits(), 2 * 16 * 16);
    }

    proptest! {
        #[test]
        fn prop_get_never_returns_excluded(
            ops in proptest::collection::vec((0u64..4, 0u32..64, 0u8..4), 0..128)
        ) {
            let mut wt = table();
            for (page, line, way) in &ops {
                wt.set(PPageId::new(*page), *line, WayId(*way));
            }
            for (page, line, _) in &ops {
                if let Some(w) = wt.get(PPageId::new(*page), *line) {
                    let excluded = (line / 4) % 4;
                    prop_assert_ne!(u32::from(w.0), excluded);
                }
            }
        }

        #[test]
        fn prop_resident_never_exceeds_capacity(
            ops in proptest::collection::vec((0u64..32, 0u32..64), 0..256)
        ) {
            let mut wt = SegmentedWayTable::new(4, 16, 4, 4);
            for (page, line) in ops {
                wt.set(PPageId::new(page), line, WayId(1));
            }
            prop_assert!(wt.resident() <= 4);
        }
    }
}
