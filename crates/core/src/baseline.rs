//! The two Table I baselines: `Base1ldst` (one load *or* store per cycle,
//! single-ported everything) and `Base2ld1st` (two loads + one store per
//! cycle via physical multi-porting on top of banking).
//!
//! Both perform a conventional parallel tag + data lookup on every access
//! and translate every memory reference individually; `Base2ld1st` pays the
//! multi-port premium on every uTLB/TLB/L1 activation and in leakage, which
//! is exactly the trade-off Fig. 4b quantifies.

use std::collections::VecDeque;

use malec_cpu::interface::{AcceptKind, L1DataInterface};
use malec_energy::EnergyCounters;
use malec_mem::hierarchy::MemoryHierarchy;
use malec_types::addr::{LineAddr, PAddr};
use malec_types::config::{InterfaceKind, SimConfig};
use malec_types::op::{MemOp, OpId};

use crate::metrics::InterfaceStats;
use crate::mmu::Mmu;
use crate::pending::{CompletionQueue, FillTable};
use crate::sbmb::{MergeBuffer, StoreBuffer};

#[derive(Clone, Copy, Debug)]
struct PendingLoad {
    op: MemOp,
    paddr: PAddr,
    ready: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingWrite {
    line: LineAddr,
    sub_blocks: u32,
}

/// A conventional multiple-access L1 data interface (both baselines).
///
/// # Example
///
/// ```
/// use malec_core::baseline::BaselineInterface;
/// use malec_types::SimConfig;
///
/// let iface = BaselineInterface::new(&SimConfig::base2ld1st(), 1);
/// assert_eq!(iface.stats().loads_serviced, 0);
/// ```
#[derive(Debug)]
pub struct BaselineInterface {
    config: SimConfig,
    mmu: Mmu,
    hierarchy: MemoryHierarchy,
    sb: StoreBuffer,
    mb: MergeBuffer,
    counters: EnergyCounters,
    stats: InterfaceStats,
    pending: VecDeque<PendingLoad>,
    pending_writes: VecDeque<PendingWrite>,
    completions: CompletionQueue,
    pending_fills: FillTable,
    cycle: u64,
    read_capacity: u32,
    write_capacity: u32,
    total_capacity: u32,
}

impl BaselineInterface {
    /// Builds the baseline interface for `config` (must be
    /// [`InterfaceKind::Base1LdSt`] or [`InterfaceKind::Base2Ld1St`]).
    ///
    /// # Panics
    ///
    /// Panics if called with the MALEC interface kind.
    pub fn new(config: &SimConfig, seed: u64) -> Self {
        let (read_capacity, write_capacity, total_capacity) = match config.interface {
            InterfaceKind::Base1LdSt => (1, 1, 1),
            InterfaceKind::Base2Ld1St => (2, 1, 2),
            InterfaceKind::Malec => panic!("use MalecInterface for the MALEC configuration"),
        };
        Self {
            config: config.clone(),
            mmu: Mmu::new(
                usize::from(config.utlb_entries),
                usize::from(config.tlb_entries),
                seed,
            ),
            hierarchy: MemoryHierarchy::for_config(config),
            sb: StoreBuffer::new(usize::from(config.sb_entries)),
            mb: MergeBuffer::new(
                usize::from(config.mb_entries),
                config.page.line_offset_bits(),
            ),
            counters: EnergyCounters::default(),
            stats: InterfaceStats::default(),
            pending: VecDeque::with_capacity(64),
            pending_writes: VecDeque::with_capacity(8),
            completions: CompletionQueue::with_capacity(32),
            pending_fills: FillTable::with_capacity(128),
            cycle: 0,
            read_capacity,
            write_capacity,
            total_capacity,
        }
    }

    /// Accumulated energy event counters.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Interface statistics.
    pub fn stats(&self) -> &InterfaceStats {
        &self.stats
    }

    /// The memory hierarchy (for miss-rate reporting).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// The MMU (for TLB statistics).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Translates with energy accounting; returns (paddr, extra latency).
    fn translate_counted(&mut self, op: &MemOp) -> (PAddr, u32) {
        let vpage = self.config.page.vpage_of(op.vaddr);
        self.counters.utlb_lookups += 1;
        self.stats.translations += 1;
        let t = self.mmu.translate(vpage);
        match t.path {
            crate::mmu::TranslationPath::MicroHit => {}
            crate::mmu::TranslationPath::TlbHit => {
                self.counters.tlb_lookups += 1;
                self.counters.utlb_fills += 1;
            }
            crate::mmu::TranslationPath::Walk => {
                self.counters.tlb_lookups += 1;
                self.counters.tlb_fills += 1;
                self.counters.utlb_fills += 1;
            }
        }
        let offset = op.vaddr.raw() & (self.config.page.page_bytes() - 1);
        let paddr = PAddr::new((t.ppage.raw() << self.config.page.page_offset_bits()) | offset);
        (paddr, t.path.extra_latency())
    }

    /// Sub-blocks a baseline access activates: one, or two when the access
    /// crosses a 128-bit sub-block boundary.
    fn sub_blocks_of(&self, op: &MemOp, paddr: PAddr) -> u32 {
        let sb_bytes = self.config.l1.sub_block_bytes();
        let first = paddr.raw() / sb_bytes;
        let last = (paddr.raw() + u64::from(op.size.max(1)) - 1) / sb_bytes;
        (last - first + 1) as u32
    }

    fn service_load(&mut self, p: PendingLoad) {
        let line = self.config.page.line_of(p.paddr.raw());
        let sub_blocks = self.sub_blocks_of(&p.op, p.paddr);
        // Conventional parallel lookup: all ways' tags + data.
        self.counters
            .l1_conventional_read(self.config.l1.ways(), sub_blocks);
        self.stats.conventional_accesses += 1;
        // Full-width SB and MB lookups for forwarding/consistency.
        self.counters.sb_lookups_full += 1;
        self.counters.mb_lookups_full += 1;

        let outcome = self.hierarchy.resolve_line(line, None);
        if !outcome.l1_hit {
            self.counters
                .l1_line_fill(self.config.l1.sub_blocks_per_line());
            // The access replays once the fill completes (gem5-style):
            // another conventional parallel lookup returns the data.
            self.counters
                .l1_conventional_read(self.config.l1.ways(), sub_blocks);
            self.stats.conventional_accesses += 1;
        }
        let mut done =
            self.cycle + u64::from(self.config.l1_latency()) + u64::from(outcome.extra_latency);
        // MSHR semantics: an access to a line with an outstanding fill
        // completes no earlier than that fill.
        if outcome.l1_hit {
            if let Some(ready) = self.pending_fills.ready_after(line.raw(), self.cycle) {
                done = done.max(ready);
            }
        } else {
            self.pending_fills.note_fill(line.raw(), done);
        }
        self.completions.push(done, p.op.id);
        self.stats.loads_serviced += 1;
    }

    fn service_write(&mut self, w: PendingWrite) {
        // Tag check + data write into the hit way.
        self.counters.l1_write(w.sub_blocks);
        let outcome = self.hierarchy.resolve_line(w.line, None);
        if !outcome.l1_hit {
            self.counters
                .l1_line_fill(self.config.l1.sub_blocks_per_line());
        }
        self.stats.mbe_writes += 1;
    }

    fn drain_store_buffer(&mut self) {
        let Some(op) = self.sb.pop_committed() else {
            return;
        };
        // The MB address region is physical; the SB holds physical
        // addresses (translation happened at acceptance). The stored op
        // carries the virtual address, so recompute the line from the MMU's
        // current mapping deterministically via the page table (same page
        // mapping as at acceptance — the simulator has no remaps).
        if let Some(evicted) = self.mb.insert(op) {
            let line =
                LineAddr::new(evicted.rep.vaddr.raw() >> self.config.page.line_offset_bits());
            self.pending_writes.push_back(PendingWrite {
                line: self.physical_line(line),
                sub_blocks: 2,
            });
        }
    }

    /// Translates a virtual line to a physical line via the page table
    /// (no TLB energy: the SB entry already carries the physical tag).
    fn physical_line(&self, vline: LineAddr) -> LineAddr {
        let page = self.config.page;
        let lines_per_page = u64::from(page.lines_per_page());
        let vpage = malec_types::addr::VPageId::new(vline.raw() / lines_per_page);
        let ppage = malec_mem::tlb::PageTable::default().translate(vpage);
        LineAddr::new(ppage.raw() * lines_per_page + vline.raw() % lines_per_page)
    }
}

impl L1DataInterface for BaselineInterface {
    fn tick(&mut self, cycle: u64, completed: &mut Vec<OpId>) {
        self.cycle = cycle;

        // 1. Deliver due completions (min-heap pop instead of a full scan).
        self.completions.drain_due(cycle, completed);
        self.pending_fills.prune(cycle);

        // 2. Service cache accesses within the port budget. Writes (merge
        //    buffer evictions) are not time critical; loads go first.
        let mut reads = 0u32;
        let mut writes = 0u32;
        while reads < self.read_capacity
            && reads + writes < self.total_capacity
            && self.pending.front().is_some_and(|p| p.ready <= cycle)
        {
            let p = self.pending.pop_front().expect("front checked");
            self.service_load(p);
            reads += 1;
        }
        while writes < self.write_capacity
            && reads + writes < self.total_capacity
            && !self.pending_writes.is_empty()
        {
            let w = self.pending_writes.pop_front().expect("nonempty");
            self.service_write(w);
            writes += 1;
        }

        // 3. Drain one committed store toward the merge buffer.
        self.drain_store_buffer();
    }

    fn offer_load(&mut self, op: MemOp) -> AcceptKind {
        let (paddr, extra) = self.translate_counted(&op);
        self.pending.push_back(PendingLoad {
            op,
            paddr,
            ready: self.cycle + 1 + u64::from(extra),
        });
        AcceptKind::Accepted
    }

    fn offer_store(&mut self, op: MemOp) -> AcceptKind {
        if !self.sb.has_room() {
            return AcceptKind::Rejected;
        }
        let (_paddr, _extra) = self.translate_counted(&op);
        let pushed = self.sb.push(op);
        debug_assert!(pushed);
        self.stats.stores_accepted += 1;
        AcceptKind::Accepted
    }

    fn commit_store(&mut self, id: OpId) {
        self.sb.mark_committed(id);
    }

    fn pending_loads(&self) -> usize {
        self.pending.len() + self.completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::addr::VAddr;

    fn tick_n(iface: &mut BaselineInterface, from: u64, n: u64) -> Vec<OpId> {
        let mut out = Vec::new();
        for c in from..from + n {
            iface.tick(c, &mut out);
        }
        out
    }

    #[test]
    fn load_completes_with_l1_latency() {
        let mut i = BaselineInterface::new(&SimConfig::base1ldst(), 1);
        i.tick(0, &mut Vec::new());
        assert!(i
            .offer_load(MemOp::load(OpId(0), VAddr::new(0x1000), 4))
            .is_accepted());
        let done = tick_n(&mut i, 1, 100);
        assert_eq!(done, vec![OpId(0)]);
        assert_eq!(i.stats().loads_serviced, 1);
        assert_eq!(i.pending_loads(), 0);
    }

    #[test]
    fn second_access_to_line_is_a_hit_and_faster() {
        let mut i = BaselineInterface::new(&SimConfig::base1ldst(), 1);
        i.tick(0, &mut Vec::new());
        i.offer_load(MemOp::load(OpId(0), VAddr::new(0x1000), 4));
        // Drain the miss.
        let mut c = 1;
        let mut out = Vec::new();
        while out.is_empty() {
            i.tick(c, &mut out);
            c += 1;
        }
        let miss_latency = c - 1;
        i.offer_load(MemOp::load(OpId(1), VAddr::new(0x1004), 4));
        let start = c;
        out.clear();
        while out.is_empty() {
            i.tick(c, &mut out);
            c += 1;
        }
        let hit_latency = c - 1 - start;
        assert!(
            hit_latency + 10 < miss_latency,
            "hit {hit_latency} vs miss {miss_latency}"
        );
    }

    #[test]
    fn base1_services_one_load_per_cycle() {
        let mut i = BaselineInterface::new(&SimConfig::base1ldst(), 1);
        i.tick(0, &mut Vec::new());
        // Warm the lines first.
        for k in 0..4u64 {
            i.offer_load(MemOp::load(OpId(k), VAddr::new(0x1000 + k * 64), 4));
        }
        tick_n(&mut i, 1, 200);
        // Four warm loads offered in one cycle: completions must be spread
        // over four distinct service cycles.
        i.tick(201, &mut Vec::new());
        for k in 10..14u64 {
            i.offer_load(MemOp::load(OpId(k), VAddr::new(0x1000 + (k - 10) * 64), 4));
        }
        let mut per_cycle = Vec::new();
        for c in 202..220 {
            let mut out = Vec::new();
            i.tick(c, &mut out);
            if !out.is_empty() {
                per_cycle.push(out.len());
            }
        }
        assert_eq!(per_cycle, vec![1, 1, 1, 1], "single-ported service");
    }

    #[test]
    fn base2_services_two_loads_per_cycle() {
        let mut i = BaselineInterface::new(&SimConfig::base2ld1st(), 1);
        i.tick(0, &mut Vec::new());
        for k in 0..4u64 {
            i.offer_load(MemOp::load(OpId(k), VAddr::new(0x1000 + k * 64), 4));
        }
        tick_n(&mut i, 1, 200);
        i.tick(201, &mut Vec::new());
        for k in 10..14u64 {
            i.offer_load(MemOp::load(OpId(k), VAddr::new(0x1000 + (k - 10) * 64), 4));
        }
        let mut per_cycle = Vec::new();
        for c in 202..220 {
            let mut out = Vec::new();
            i.tick(c, &mut out);
            if !out.is_empty() {
                per_cycle.push(out.len());
            }
        }
        assert_eq!(per_cycle, vec![2, 2], "dual-read-ported service");
    }

    #[test]
    fn store_lifecycle_reaches_l1_write() {
        let mut i = BaselineInterface::new(&SimConfig::base1ldst(), 1);
        i.tick(0, &mut Vec::new());
        // 5 stores to 5 different lines: MB (4 entries) must evict at least
        // one entry, producing an L1 write.
        for k in 0..5u64 {
            let op = MemOp::store(OpId(k), VAddr::new(0x1000 + k * 64), 4);
            assert!(i.offer_store(op).is_accepted());
            i.commit_store(OpId(k));
        }
        tick_n(&mut i, 1, 50);
        assert_eq!(i.stats().stores_accepted, 5);
        assert!(i.stats().mbe_writes >= 1, "MB eviction must write L1");
        assert!(i.counters().l1_data_subblock_writes > 0);
    }

    #[test]
    fn sb_full_rejects_store() {
        let cfg = SimConfig::base1ldst();
        let mut i = BaselineInterface::new(&cfg, 1);
        i.tick(0, &mut Vec::new());
        let mut accepted = 0;
        for k in 0..100u64 {
            if i.offer_store(MemOp::store(OpId(k), VAddr::new(0x1000 + k * 4), 4))
                .is_accepted()
            {
                accepted += 1;
            }
        }
        assert_eq!(accepted, u64::from(cfg.sb_entries));
    }

    #[test]
    fn every_load_translates_individually() {
        let mut i = BaselineInterface::new(&SimConfig::base2ld1st(), 1);
        i.tick(0, &mut Vec::new());
        for k in 0..10u64 {
            i.offer_load(MemOp::load(OpId(k), VAddr::new(0x1000 + k * 8), 4));
        }
        assert_eq!(i.counters().utlb_lookups, 10, "no translation sharing");
    }
}
