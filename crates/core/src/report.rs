//! Report helpers: geometric means, normalization and fixed-width tables —
//! the building blocks every figure/table bench uses.

/// Geometric mean of positive values (the paper reports per-suite and
/// overall geometric means).
///
/// # Example
///
/// ```
/// use malec_core::report::geo_mean;
///
/// let g = geo_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(geo_mean(&[]), 0.0);
/// ```
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// `value / base` as a percentage (the paper normalizes to `Base1ldst`
/// = 100 %).
pub fn normalized_percent(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * value / base
    }
}

/// A minimal fixed-width text table for bench output.
///
/// # Example
///
/// ```
/// use malec_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "MALEC".into()]);
/// t.row(vec!["gzip".into(), "86.0".into()]);
/// let s = t.render();
/// assert!(s.contains("gzip"));
/// assert!(s.contains("MALEC"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a separator row (rendered as dashes).
    pub fn separator(&mut self) {
        self.rows.push(vec!["--".into()]);
    }

    /// Renders the table with per-column widths.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            if row.len() == 1 && row[0] == "--" {
                continue;
            }
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w.saturating_sub(cell.chars().count());
                // Right-align numeric-looking cells, left-align labels.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.len() == 1 && row[0] == "--" {
                out.push_str(&"-".repeat(total));
            } else {
                out.push_str(&render_row(row, &widths));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[5.0]) - 5.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn geo_mean_handles_tiny_values() {
        let g = geo_mean(&[1e-300, 1.0]);
        assert!(g > 0.0 && g.is_finite());
    }

    #[test]
    fn normalization() {
        assert!((normalized_percent(86.0, 100.0) - 86.0).abs() < 1e-12);
        assert_eq!(normalized_percent(1.0, 0.0), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a-long-benchmark".into(), "1.5".into()]);
        t.separator();
        t.row(vec!["b".into(), "100.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with('-'), "separator row");
        // Numeric cells right-align within the column.
        assert!(lines[2].ends_with("1.5"));
        assert!(lines[4].ends_with("100.25"));
    }
}
