//! Behavioral digest and binary codec for [`RunSummary`] — the shared
//! foundation of the golden tables, replay verification, and the
//! `malec-serve` result cache.
//!
//! [`digest`] folds every behavioral field of a summary — core statistics,
//! interface statistics, all energy event counters, the priced energy (bit
//! pattern) and the miss rates (bit patterns) — into a single FNV-1a value.
//! Two summaries digest equal **iff** their behavioral content is
//! bit-identical, which is what lets a content-addressed cache return a
//! stored summary in place of a simulation: the generator is deterministic,
//! so one key maps to one digest forever. (This function lived in
//! `malec_bench::goldens` through PR 2; it moved here so goldens,
//! replay-verify and the cache share one implementation. `goldens`
//! re-exports it.)
//!
//! [`write_summary`] / [`read_summary`] are the compact little-endian codec
//! the cache's append-only log uses to persist summaries across restarts.
//! The round trip is lossless: `read(write(s))` digests identically to `s`.

use std::io::{self, Read, Write};

use malec_cpu::CoreStats;
use malec_energy::{intern_structure_name, EnergyBreakdown, EnergyCounters, StructureEnergy};
use malec_trace::Suite;

use crate::metrics::{InterfaceStats, RunSummary};
use crate::source::{REPLAY_SUITE, SCENARIO_SUITE};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[inline]
fn fold(h: u64, v: u64) -> u64 {
    let mut h = h ^ v;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// The `u64` fields of `c`, in digest/codec order.
fn core_fields(c: &CoreStats) -> [u64; 7] {
    [
        c.cycles,
        c.committed,
        c.loads,
        c.stores,
        c.branches,
        c.agu_stall_cycles,
        c.issued_ops,
    ]
}

/// The `u64` fields of `i`, in digest/codec order.
fn interface_fields(i: &InterfaceStats) -> [u64; 11] {
    [
        i.loads_serviced,
        i.merged_loads,
        i.stores_accepted,
        i.mbe_writes,
        i.groups,
        i.group_loads,
        i.reduced_accesses,
        i.conventional_accesses,
        i.held_load_cycles,
        i.translations,
        i.store_translations_shared,
    ]
}

/// The `u64` fields of `k`, in digest/codec order.
fn counter_fields(k: &EnergyCounters) -> [u64; 26] {
    [
        k.l1_tag_bank_reads,
        k.l1_data_subblock_reads,
        k.l1_data_subblock_writes,
        k.l1_tag_bank_writes,
        k.utlb_lookups,
        k.utlb_fills,
        k.utlb_reverse_lookups,
        k.tlb_lookups,
        k.tlb_fills,
        k.tlb_reverse_lookups,
        k.uwt_reads,
        k.uwt_writes,
        k.uwt_bit_updates,
        k.wt_reads,
        k.wt_writes,
        k.wt_bit_updates,
        k.wdu_lookups,
        k.wdu_writes,
        k.sb_lookups_full,
        k.sb_lookups_page_segment,
        k.sb_lookups_narrow,
        k.mb_lookups_full,
        k.mb_lookups_page_segment,
        k.mb_lookups_narrow,
        k.input_buffer_compares,
        k.arbitration_compares,
    ]
}

/// FNV-1a digest over every behavioral field of `s`.
pub fn digest(s: &RunSummary) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.config.bytes() {
        h = fold(h, u64::from(b));
    }
    for b in s.benchmark.bytes() {
        h = fold(h, u64::from(b));
    }
    for v in core_fields(&s.core) {
        h = fold(h, v);
    }
    for v in interface_fields(&s.interface) {
        h = fold(h, v);
    }
    for v in counter_fields(&s.counters) {
        h = fold(h, v);
    }
    for v in [
        s.energy.dynamic.to_bits(),
        s.energy.leakage.to_bits(),
        s.l1_miss_rate.to_bits(),
        s.l2_miss_rate.to_bits(),
        s.utlb_miss_rate.to_bits(),
    ] {
        h = fold(h, v);
    }
    h
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    write_u64(w, v.to_bits())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Strings in a summary are short labels; anything longer is corruption,
/// and bounding the length keeps a corrupt log from asking for a huge
/// allocation.
const MAX_STR: u32 = 4096;

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)?;
    if len > MAX_STR {
        return Err(bad(format!(
            "summary string length {len} exceeds {MAX_STR}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("summary string is not UTF-8"))
}

/// Maps a decoded suite display name back to its canonical `&'static str`.
fn intern_suite(name: &str) -> Option<&'static str> {
    [
        Suite::SpecInt.name(),
        Suite::SpecFp.name(),
        Suite::MediaBench2.name(),
        SCENARIO_SUITE,
        REPLAY_SUITE,
    ]
    .into_iter()
    .find(|&s| s == name)
}

/// Serializes `s` to the compact little-endian wire form.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_summary(w: &mut impl Write, s: &RunSummary) -> io::Result<()> {
    write_str(w, &s.config)?;
    write_str(w, &s.benchmark)?;
    write_str(w, s.suite)?;
    for v in core_fields(&s.core) {
        write_u64(w, v)?;
    }
    for v in interface_fields(&s.interface) {
        write_u64(w, v)?;
    }
    for v in counter_fields(&s.counters) {
        write_u64(w, v)?;
    }
    write_f64(w, s.energy.dynamic)?;
    write_f64(w, s.energy.leakage)?;
    write_f64(w, s.energy.excluded_dynamic)?;
    write_u32(w, s.energy.structures.len() as u32)?;
    for st in &s.energy.structures {
        write_str(w, st.name)?;
        write_f64(w, st.dynamic)?;
        write_f64(w, st.leakage)?;
    }
    write_f64(w, s.l1_miss_rate)?;
    write_f64(w, s.l2_miss_rate)?;
    write_f64(w, s.utlb_miss_rate)
}

/// Deserializes one summary written by [`write_summary`].
///
/// # Errors
///
/// Returns `InvalidData` for unknown suite or structure names (a log
/// written by an incompatible version) and propagates I/O errors —
/// including `UnexpectedEof` for a truncated record.
pub fn read_summary(r: &mut impl Read) -> io::Result<RunSummary> {
    let config = read_str(r)?;
    let benchmark = read_str(r)?;
    let suite_name = read_str(r)?;
    let suite =
        intern_suite(&suite_name).ok_or_else(|| bad(format!("unknown suite `{suite_name}`")))?;

    let mut core = CoreStats::default();
    for slot in [
        &mut core.cycles,
        &mut core.committed,
        &mut core.loads,
        &mut core.stores,
        &mut core.branches,
        &mut core.agu_stall_cycles,
        &mut core.issued_ops,
    ] {
        *slot = read_u64(r)?;
    }

    let mut i = InterfaceStats::default();
    for slot in [
        &mut i.loads_serviced,
        &mut i.merged_loads,
        &mut i.stores_accepted,
        &mut i.mbe_writes,
        &mut i.groups,
        &mut i.group_loads,
        &mut i.reduced_accesses,
        &mut i.conventional_accesses,
        &mut i.held_load_cycles,
        &mut i.translations,
        &mut i.store_translations_shared,
    ] {
        *slot = read_u64(r)?;
    }

    let mut k = EnergyCounters::default();
    for slot in [
        &mut k.l1_tag_bank_reads,
        &mut k.l1_data_subblock_reads,
        &mut k.l1_data_subblock_writes,
        &mut k.l1_tag_bank_writes,
        &mut k.utlb_lookups,
        &mut k.utlb_fills,
        &mut k.utlb_reverse_lookups,
        &mut k.tlb_lookups,
        &mut k.tlb_fills,
        &mut k.tlb_reverse_lookups,
        &mut k.uwt_reads,
        &mut k.uwt_writes,
        &mut k.uwt_bit_updates,
        &mut k.wt_reads,
        &mut k.wt_writes,
        &mut k.wt_bit_updates,
        &mut k.wdu_lookups,
        &mut k.wdu_writes,
        &mut k.sb_lookups_full,
        &mut k.sb_lookups_page_segment,
        &mut k.sb_lookups_narrow,
        &mut k.mb_lookups_full,
        &mut k.mb_lookups_page_segment,
        &mut k.mb_lookups_narrow,
        &mut k.input_buffer_compares,
        &mut k.arbitration_compares,
    ] {
        *slot = read_u64(r)?;
    }

    let dynamic = read_f64(r)?;
    let leakage = read_f64(r)?;
    let excluded_dynamic = read_f64(r)?;
    let n_structures = read_u32(r)?;
    if n_structures > 64 {
        return Err(bad(format!("implausible structure count {n_structures}")));
    }
    let mut structures = Vec::with_capacity(n_structures as usize);
    for _ in 0..n_structures {
        let name = read_str(r)?;
        let name = intern_structure_name(&name)
            .ok_or_else(|| bad(format!("unknown energy structure `{name}`")))?;
        structures.push(StructureEnergy {
            name,
            dynamic: read_f64(r)?,
            leakage: read_f64(r)?,
        });
    }

    Ok(RunSummary {
        config,
        benchmark,
        suite,
        core,
        interface: i,
        counters: k,
        energy: EnergyBreakdown {
            dynamic,
            leakage,
            structures,
            excluded_dynamic,
        },
        l1_miss_rate: read_f64(r)?,
        l2_miss_rate: read_f64(r)?,
        utlb_miss_rate: read_f64(r)?,
    })
}

/// [`write_summary`] into a fresh buffer.
pub fn summary_to_bytes(s: &RunSummary) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512);
    write_summary(&mut buf, s).expect("writing to a Vec cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioSource, Simulator};
    use malec_trace::benchmark_named;
    use malec_trace::scenario::preset_named;
    use malec_types::SimConfig;

    fn sample(config: SimConfig) -> RunSummary {
        let gzip = benchmark_named("gzip").expect("gzip exists");
        Simulator::new(config).run(&gzip, 3_000, 7)
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = sample(SimConfig::malec());
        let b = sample(SimConfig::malec());
        assert_eq!(digest(&a), digest(&b), "same run, same digest");
        let mut c = a.clone();
        c.counters.utlb_lookups += 1;
        assert_ne!(digest(&a), digest(&c), "one counter flips the digest");
        let mut d = a.clone();
        d.benchmark.push('x');
        assert_ne!(digest(&a), digest(&d), "the workload name is folded");
    }

    #[test]
    fn codec_roundtrip_is_lossless_for_every_interface() {
        for cfg in [
            SimConfig::base1ldst(),
            SimConfig::base2ld1st(),
            SimConfig::malec(),
        ] {
            let s = sample(cfg);
            let bytes = summary_to_bytes(&s);
            let back = read_summary(&mut bytes.as_slice()).expect("decodes");
            assert_eq!(back.config, s.config);
            assert_eq!(back.benchmark, s.benchmark);
            assert_eq!(back.suite, s.suite);
            assert_eq!(back.core, s.core);
            assert_eq!(back.interface, s.interface);
            assert_eq!(back.counters, s.counters);
            assert_eq!(back.energy, s.energy);
            assert_eq!(back.l1_miss_rate.to_bits(), s.l1_miss_rate.to_bits());
            assert_eq!(digest(&back), digest(&s), "roundtrip preserves the digest");
        }
    }

    #[test]
    fn codec_roundtrips_scenario_summaries() {
        let scenario = preset_named("store_burst").expect("preset");
        let s = Simulator::new(SimConfig::malec())
            .run_source(&ScenarioSource::Scenario(scenario), 4_000, 2013)
            .expect("generator sources cannot fail");
        let bytes = summary_to_bytes(&s);
        let back = read_summary(&mut bytes.as_slice()).expect("decodes");
        assert_eq!(back.suite, crate::source::SCENARIO_SUITE);
        assert_eq!(digest(&back), digest(&s));
    }

    #[test]
    fn truncated_and_corrupt_records_error_cleanly() {
        let s = sample(SimConfig::malec());
        let bytes = summary_to_bytes(&s);
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_summary(&mut &bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        // An unknown suite name is an InvalidData error, not a panic.
        let mut forged = Vec::new();
        write_str(&mut forged, "MALEC").unwrap();
        write_str(&mut forged, "gzip").unwrap();
        write_str(&mut forged, "No-Such-Suite").unwrap();
        forged.extend_from_slice(&[0u8; 8 * 44]);
        let err = read_summary(&mut forged.as_slice()).expect_err("must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_string_is_rejected_without_allocating() {
        let mut forged = Vec::new();
        write_u32(&mut forged, u32::MAX).unwrap();
        let err = read_summary(&mut forged.as_slice()).expect_err("must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
