//! The Way Determination Unit of Nicolaescu et al. (DATE'03), extended with
//! validity bits as the paper does for its Sec. VI-C comparison.
//!
//! The WDU stores way information for recently accessed cache *lines* in a
//! small fully-associative buffer (8/16/32 entries analyzed). Unlike the
//! page-based way tables it needs one tag-sized lookup port per parallel
//! memory reference (four for the analyzed MALEC configuration), and its
//! line granularity covers a much smaller footprint than 16–64 pages.

use malec_types::addr::{LineAddr, WayId};

use malec_mem::replacement::Lru;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct WduEntry {
    line: LineAddr,
    way: WayId,
    valid: bool,
}

/// A line-granularity way-determination buffer with LRU replacement and
/// validity bits.
///
/// # Example
///
/// ```
/// use malec_core::wdu::Wdu;
/// use malec_types::addr::{LineAddr, WayId};
///
/// let mut wdu = Wdu::new(8);
/// let line = LineAddr::new(0x40);
/// assert_eq!(wdu.lookup(line), None);
/// wdu.record(line, WayId(2));
/// assert_eq!(wdu.lookup(line), Some(WayId(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Wdu {
    entries: Vec<Option<WduEntry>>,
    lru: Lru,
    lookups: u64,
    hits: u64,
}

impl Wdu {
    /// Creates an empty WDU with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "WDU needs entries");
        Self {
            entries: vec![None; entries],
            lru: Lru::new(entries),
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Looks up the way for `line`; `Some(way)` only when the entry is valid
    /// (reduced cache access allowed).
    pub fn lookup(&mut self, line: LineAddr) -> Option<WayId> {
        self.lookups += 1;
        let found = self
            .entries
            .iter()
            .position(|e| matches!(e, Some(e) if e.line == line));
        if let Some(slot) = found {
            self.lru.touch(slot);
            let e = self.entries[slot].expect("slot occupied");
            if e.valid {
                self.hits += 1;
                return Some(e.way);
            }
        }
        None
    }

    /// Records that `line` was found in `way` (install or refresh).
    pub fn record(&mut self, line: LineAddr, way: WayId) {
        if let Some(slot) = self
            .entries
            .iter()
            .position(|e| matches!(e, Some(e) if e.line == line))
        {
            self.entries[slot] = Some(WduEntry {
                line,
                way,
                valid: true,
            });
            self.lru.touch(slot);
            return;
        }
        let slot = self
            .entries
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| self.lru.victim());
        self.entries[slot] = Some(WduEntry {
            line,
            way,
            valid: true,
        });
        self.lru.touch(slot);
    }

    /// Invalidates the entry for `line` if present (cache eviction).
    pub fn invalidate(&mut self, line: LineAddr) {
        if let Some(slot) = self
            .entries
            .iter()
            .position(|e| matches!(e, Some(e) if e.line == line))
        {
            if let Some(e) = &mut self.entries[slot] {
                e.valid = false;
            }
        }
    }

    /// Lookups performed (each costs a multi-ported CAM search).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Valid hits (reduced accesses enabled).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate over lookups (the WDU's coverage).
    pub fn coverage(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn miss_record_hit() {
        let mut w = Wdu::new(4);
        let line = LineAddr::new(9);
        assert_eq!(w.lookup(line), None);
        w.record(line, WayId(1));
        assert_eq!(w.lookup(line), Some(WayId(1)));
        assert_eq!(w.lookups(), 2);
        assert_eq!(w.hits(), 1);
        assert!((w.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_drops_cold_lines() {
        let mut w = Wdu::new(2);
        w.record(LineAddr::new(1), WayId(0));
        w.record(LineAddr::new(2), WayId(1));
        // Touch line 1 to keep it hot.
        assert!(w.lookup(LineAddr::new(1)).is_some());
        w.record(LineAddr::new(3), WayId(2));
        assert_eq!(w.lookup(LineAddr::new(2)), None, "cold line evicted");
        assert!(w.lookup(LineAddr::new(1)).is_some());
        assert!(w.lookup(LineAddr::new(3)).is_some());
    }

    #[test]
    fn invalidate_keeps_entry_but_blocks_reduced_access() {
        let mut w = Wdu::new(4);
        let line = LineAddr::new(5);
        w.record(line, WayId(3));
        w.invalidate(line);
        assert_eq!(w.lookup(line), None);
        // Re-recording revalidates.
        w.record(line, WayId(2));
        assert_eq!(w.lookup(line), Some(WayId(2)));
    }

    #[test]
    fn bigger_wdu_covers_more() {
        // A working set of 24 lines cycled repeatedly: a 32-entry WDU holds
        // it all; an 8-entry WDU thrashes.
        let lines: Vec<LineAddr> = (0..24).map(LineAddr::new).collect();
        let mut small = Wdu::new(8);
        let mut big = Wdu::new(32);
        for _ in 0..50 {
            for &l in &lines {
                for w in [&mut small, &mut big] {
                    if w.lookup(l).is_none() {
                        w.record(l, WayId(0));
                    }
                }
            }
        }
        assert!(
            big.coverage() > small.coverage() + 0.3,
            "big={} small={}",
            big.coverage(),
            small.coverage()
        );
    }

    proptest! {
        #[test]
        fn prop_capacity_never_exceeded(ops in proptest::collection::vec((0u64..64, 0u8..4), 0..256)) {
            let mut w = Wdu::new(8);
            for (line, way) in ops {
                w.record(LineAddr::new(line), WayId(way));
            }
            let occupied = w.entries.iter().filter(|e| e.is_some()).count();
            prop_assert!(occupied <= 8);
        }

        #[test]
        fn prop_lookup_after_record(line in 0u64..1024, way in 0u8..4) {
            let mut w = Wdu::new(8);
            w.record(LineAddr::new(line), WayId(way));
            prop_assert_eq!(w.lookup(LineAddr::new(line)), Some(WayId(way)));
        }
    }
}
