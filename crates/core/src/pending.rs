//! Allocation-free bookkeeping for the per-cycle hot path.
//!
//! Both interface implementations used to keep load completions in a
//! `Vec<(due, id)>` scanned with `retain` every tick, and outstanding line
//! fills in a `HashMap<u64, u64>` that hashed on every L1 hit. Profiling the
//! sweep matrix showed those two structures (plus their rehash/regrow
//! allocations) dominating steady-state `tick()` cost, so they are replaced
//! by:
//!
//! * [`CompletionQueue`] — a min-heap keyed on due-cycle: delivering this
//!   cycle's completions pops only the entries that are actually due instead
//!   of scanning every in-flight load;
//! * [`FillTable`] — a small open vector of `(line, ready)` pairs mirroring
//!   the MSHRs: with ≤ a handful of outstanding fills, a linear probe beats
//!   hashing, never allocates in steady state, and expired entries are
//!   pruned in place.
//!
//! Both structures preallocate in the constructor and only touch their own
//! storage afterwards, so a steady-state tick performs no heap allocation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use malec_types::op::OpId;

/// In-flight load completions ordered by due cycle.
#[derive(Clone, Debug, Default)]
pub struct CompletionQueue {
    heap: BinaryHeap<Reverse<(u64, OpId)>>,
}

impl CompletionQueue {
    /// Creates a queue with room for `capacity` in-flight loads.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Schedules `id` to complete at `due`.
    #[inline]
    pub fn push(&mut self, due: u64, id: OpId) {
        self.heap.push(Reverse((due, id)));
    }

    /// Pops every completion with `due <= cycle` into `out` (ascending due
    /// cycle, then op id).
    #[inline]
    pub fn drain_due(&mut self, cycle: u64, out: &mut Vec<OpId>) {
        while let Some(&Reverse((due, id))) = self.heap.peek() {
            if due > cycle {
                break;
            }
            self.heap.pop();
            out.push(id);
        }
    }

    /// Completions still owed.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no completions are owed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Outstanding line fills: the MSHR view an access consults to avoid
/// completing before the fill that delivers its data.
///
/// Mirrors the semantics of the `HashMap<line, ready>` it replaces exactly:
/// [`note_fill`](Self::note_fill) overwrites an existing entry for the same
/// line, and [`ready_after`](Self::ready_after) drops entries whose fill
/// already landed.
#[derive(Clone, Debug, Default)]
pub struct FillTable {
    entries: Vec<(u64, u64)>,
}

/// Above this occupancy the table prunes expired fills on `tick`.
const PRUNE_THRESHOLD: usize = 64;

impl FillTable {
    /// Creates a table with room for `capacity` outstanding fills.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Records that `line`'s fill completes at `ready`.
    #[inline]
    pub fn note_fill(&mut self, line: u64, ready: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line) {
            e.1 = ready;
        } else {
            self.entries.push((line, ready));
        }
    }

    /// If `line` has an outstanding fill later than `cycle`, returns its
    /// ready cycle; otherwise removes the stale entry (if any) and returns
    /// `None`.
    #[inline]
    pub fn ready_after(&mut self, line: u64, cycle: u64) -> Option<u64> {
        let idx = self.entries.iter().position(|e| e.0 == line)?;
        let ready = self.entries[idx].1;
        if ready > cycle {
            Some(ready)
        } else {
            self.entries.swap_remove(idx);
            None
        }
    }

    /// Drops entries whose fill already landed. Expired entries are
    /// semantically invisible (a probe removes them and reports `None`), so
    /// pruning at any point cannot change simulated behavior; it only keeps
    /// the probe short on workloads that touch many lines once. Called from
    /// `tick()`, and a no-op below [`PRUNE_THRESHOLD`] occupancy.
    #[inline]
    pub fn prune(&mut self, cycle: u64) {
        if self.entries.len() >= PRUNE_THRESHOLD {
            self.entries.retain(|&(_, ready)| ready > cycle);
        }
    }

    /// Outstanding fills tracked (including not-yet-pruned expired ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table tracks nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_deliver_in_due_order() {
        let mut q = CompletionQueue::with_capacity(8);
        q.push(10, OpId(3));
        q.push(5, OpId(1));
        q.push(10, OpId(2));
        q.push(20, OpId(4));
        let mut out = Vec::new();
        q.drain_due(4, &mut out);
        assert!(out.is_empty());
        q.drain_due(10, &mut out);
        assert_eq!(out, vec![OpId(1), OpId(2), OpId(3)]);
        assert_eq!(q.len(), 1);
        q.drain_due(u64::MAX, &mut out);
        assert_eq!(out.last(), Some(&OpId(4)));
        assert!(q.is_empty());
    }

    #[test]
    fn fill_table_matches_hashmap_semantics() {
        let mut t = FillTable::with_capacity(4);
        t.note_fill(100, 50);
        // Pending: reported as long as ready > cycle.
        assert_eq!(t.ready_after(100, 10), Some(50));
        assert_eq!(t.ready_after(100, 49), Some(50));
        // Expired: removed on probe.
        assert_eq!(t.ready_after(100, 50), None);
        assert!(t.is_empty());
        // Overwrite keeps one entry per line.
        t.note_fill(7, 30);
        t.note_fill(7, 60);
        assert_eq!(t.len(), 1);
        assert_eq!(t.ready_after(7, 40), Some(60));
        // Unknown lines report nothing.
        assert_eq!(t.ready_after(8, 0), None);
    }

    #[test]
    fn prune_only_drops_expired() {
        let mut t = FillTable::with_capacity(PRUNE_THRESHOLD);
        for i in 0..PRUNE_THRESHOLD as u64 {
            t.note_fill(i, i);
        }
        t.prune(10);
        assert!(t.len() < PRUNE_THRESHOLD);
        assert_eq!(t.ready_after(50, 10), Some(50), "live entries survive");
        assert_eq!(t.ready_after(5, 10), None, "expired entries are gone");
    }
}
