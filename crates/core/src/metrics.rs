//! Per-run statistics: what the interfaces measure and what a finished run
//! reports.

use serde::Serialize;

use malec_cpu::CoreStats;
use malec_energy::{EnergyBreakdown, EnergyCounters};

/// Counters maintained by an L1 data interface implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub struct InterfaceStats {
    /// Loads serviced (data returned).
    pub loads_serviced: u64,
    /// Loads that completed by sharing another load's L1 access.
    pub merged_loads: u64,
    /// Stores accepted into the store buffer.
    pub stores_accepted: u64,
    /// Merge-buffer evictions written to the L1.
    pub mbe_writes: u64,
    /// Page groups serviced (MALEC only).
    pub groups: u64,
    /// Loads serviced through page groups (MALEC only).
    pub group_loads: u64,
    /// Reduced cache accesses (tag arrays bypassed).
    pub reduced_accesses: u64,
    /// Conventional cache accesses (parallel tag + data lookup).
    pub conventional_accesses: u64,
    /// Load-cycles spent held in the Input Buffer (latency variability).
    pub held_load_cycles: u64,
    /// Address translations performed (one per page group for MALEC;
    /// one per reference for the baselines).
    pub translations: u64,
    /// Store translations shared with a concurrent page group (MALEC).
    pub store_translations_shared: u64,
}

impl InterfaceStats {
    /// Way-determination coverage: the fraction of L1 accesses that could
    /// bypass the tag arrays (the paper's 94 % headline metric).
    pub fn coverage(&self) -> f64 {
        let total = self.reduced_accesses + self.conventional_accesses;
        if total == 0 {
            0.0
        } else {
            self.reduced_accesses as f64 / total as f64
        }
    }

    /// Average page-group size in loads (MALEC only).
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.group_loads as f64 / self.groups as f64
        }
    }

    /// Share of serviced loads that were merged into another access.
    pub fn merge_ratio(&self) -> f64 {
        if self.loads_serviced == 0 {
            0.0
        } else {
            self.merged_loads as f64 / self.loads_serviced as f64
        }
    }
}

/// Everything one simulation run produces.
#[derive(Clone, Debug, Serialize)]
pub struct RunSummary {
    /// Configuration label (e.g. `MALEC_3cycleL1`).
    pub config: String,
    /// Workload name: a benchmark (`gzip`), a scenario (`store_burst`), or
    /// a replayed trace.
    pub benchmark: String,
    /// Suite display name.
    pub suite: &'static str,
    /// Core-side statistics (cycles, IPC, commit mix).
    pub core: CoreStats,
    /// Interface-side statistics (groups, merges, coverage).
    pub interface: InterfaceStats,
    /// Raw energy event counts.
    pub counters: EnergyCounters,
    /// Priced energy (dynamic + leakage + per-structure split).
    pub energy: EnergyBreakdown,
    /// L1 data cache miss rate over the run.
    pub l1_miss_rate: f64,
    /// L2 miss rate over backing fetches.
    pub l2_miss_rate: f64,
    /// uTLB miss rate.
    pub utlb_miss_rate: f64,
}

impl RunSummary {
    /// Total energy (dynamic + leakage).
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.core.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_ratios() {
        let mut s = InterfaceStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.mean_group_size(), 0.0);
        assert_eq!(s.merge_ratio(), 0.0);
        s.reduced_accesses = 94;
        s.conventional_accesses = 6;
        s.groups = 10;
        s.group_loads = 25;
        s.loads_serviced = 100;
        s.merged_loads = 20;
        assert!((s.coverage() - 0.94).abs() < 1e-12);
        assert!((s.mean_group_size() - 2.5).abs() < 1e-12);
        assert!((s.merge_ratio() - 0.2).abs() < 1e-12);
    }
}
