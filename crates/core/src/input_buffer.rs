//! The Input Buffer: MALEC's page-grouping front end (Sec. IV).
//!
//! Loads finishing address computation and evicted merge-buffer entries
//! enter the Input Buffer. Each cycle the highest-priority entry's virtual
//! page id goes to the uTLB, and is simultaneously compared against every
//! other valid entry; matching entries form the group handed to the
//! Arbitration Unit. Priority, high to low: loads held from previous cycles,
//! loads that just arrived (program order), then the MBE (not time critical
//! — its stores already committed).

use malec_types::addr::VPageId;
use malec_types::op::{MemOp, OpId};

/// One Input Buffer element.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IbEntry {
    /// The memory operation (load, or merge-buffer eviction write).
    pub op: MemOp,
    /// Its virtual page id (the 20-bit comparator operand).
    pub vpage: VPageId,
    /// Cycle the entry arrived (age ⇒ priority).
    pub arrived: u64,
}

/// The group selected for one cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupSelection {
    /// The page every member shares.
    pub vpage: VPageId,
    /// Member loads in priority order (leader first).
    pub loads: Vec<MemOp>,
    /// Whether the pending MBE belongs to the group.
    pub include_mbe: bool,
    /// vPageID comparisons performed (energy: one 20-bit compare per other
    /// valid entry).
    pub compares: u32,
}

/// The group metadata of one cycle's selection, without the member list —
/// [`InputBuffer::select_into`] writes the members into a caller-owned
/// buffer so the per-cycle hot path allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupMeta {
    /// The page every member shares.
    pub vpage: VPageId,
    /// Whether the pending MBE belongs to the group.
    pub include_mbe: bool,
    /// vPageID comparisons performed (energy: one 20-bit compare per other
    /// valid entry).
    pub compares: u32,
}

/// The Input Buffer.
///
/// # Example
///
/// ```
/// use malec_core::input_buffer::InputBuffer;
/// use malec_types::addr::{VAddr, VPageId};
/// use malec_types::op::{MemOp, OpId};
///
/// let mut ib = InputBuffer::new(7);
/// ib.push_load(MemOp::load(OpId(0), VAddr::new(0x1000), 4), VPageId::new(1), 0);
/// ib.push_load(MemOp::load(OpId(1), VAddr::new(0x1040), 4), VPageId::new(1), 0);
/// ib.push_load(MemOp::load(OpId(2), VAddr::new(0x2000), 4), VPageId::new(2), 0);
/// let group = ib.select().expect("entries present");
/// assert_eq!(group.vpage, VPageId::new(1));
/// assert_eq!(group.loads.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InputBuffer {
    loads: Vec<IbEntry>,
    mbe: Option<IbEntry>,
    load_cap: usize,
}

impl InputBuffer {
    /// Creates a buffer holding at most `load_cap` loads (held + fresh) plus
    /// one MBE. The paper's configuration: 3 held + 4 fresh = 7.
    pub fn new(load_cap: usize) -> Self {
        Self {
            loads: Vec::with_capacity(load_cap),
            mbe: None,
            load_cap,
        }
    }

    /// Whether another load can be accepted this cycle (AGUs stall
    /// otherwise).
    pub fn can_accept_load(&self) -> bool {
        self.loads.len() < self.load_cap
    }

    /// Inserts a load; returns false (and drops nothing) when full.
    pub fn push_load(&mut self, op: MemOp, vpage: VPageId, cycle: u64) -> bool {
        if !self.can_accept_load() {
            return false;
        }
        self.loads.push(IbEntry {
            op,
            vpage,
            arrived: cycle,
        });
        true
    }

    /// Installs the pending merge-buffer eviction; returns false if one is
    /// already waiting (the MB stalls its eviction).
    pub fn set_mbe(&mut self, op: MemOp, vpage: VPageId, cycle: u64) -> bool {
        if self.mbe.is_some() {
            return false;
        }
        self.mbe = Some(IbEntry {
            op,
            vpage,
            arrived: cycle,
        });
        true
    }

    /// Whether an MBE is waiting.
    pub fn has_mbe(&self) -> bool {
        self.mbe.is_some()
    }

    /// Loads currently buffered.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the buffer holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty() && self.mbe.is_none()
    }

    /// Selects this cycle's page group: the highest-priority entry leads,
    /// all same-page entries join. Loads outrank the MBE; among loads, age
    /// then program order.
    ///
    /// Convenience wrapper over [`select_into`](Self::select_into) that
    /// allocates the member list; the simulation hot path uses
    /// `select_into` with a reused buffer instead.
    pub fn select(&self) -> Option<GroupSelection> {
        let mut members = Vec::new();
        let meta = self.select_into(&mut members)?;
        Some(GroupSelection {
            vpage: meta.vpage,
            loads: members.into_iter().map(|e| e.op).collect(),
            include_mbe: meta.include_mbe,
            compares: meta.compares,
        })
    }

    /// Allocation-free group selection: clears `members` and fills it with
    /// this cycle's group in priority order (leader first). Returns the
    /// group metadata, or `None` when the buffer holds nothing.
    pub fn select_into(&self, members: &mut Vec<IbEntry>) -> Option<GroupMeta> {
        members.clear();
        let leader = self
            .loads
            .iter()
            .min_by_key(|e| (e.arrived, e.op.id))
            .or(self.mbe.as_ref())?;
        let vpage = leader.vpage;
        members.extend(self.loads.iter().filter(|e| e.vpage == vpage).copied());
        // (arrived, id) is unique per entry, so the unstable sort is
        // deterministic.
        members.sort_unstable_by_key(|e| (e.arrived, e.op.id));
        let include_mbe = self.mbe.as_ref().is_some_and(|m| m.vpage == vpage);
        // One comparator per other valid entry (the leader itself is free).
        let valid = self.loads.len() + usize::from(self.mbe.is_some());
        Some(GroupMeta {
            vpage,
            include_mbe,
            compares: valid.saturating_sub(1) as u32,
        })
    }

    /// Removes a serviced load.
    pub fn remove_load(&mut self, id: OpId) {
        self.loads.retain(|e| e.op.id != id);
    }

    /// Removes and returns the serviced MBE.
    pub fn take_mbe(&mut self) -> Option<MemOp> {
        self.mbe.take().map(|e| e.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::addr::VAddr;

    fn ld(id: u64, addr: u64) -> (MemOp, VPageId) {
        let op = MemOp::load(OpId(id), VAddr::new(addr), 4);
        (op, VPageId::new(addr >> 12))
    }

    #[test]
    fn capacity_enforced() {
        let mut ib = InputBuffer::new(2);
        let (a, pa) = ld(0, 0x1000);
        let (b, pb) = ld(1, 0x2000);
        let (c, pc) = ld(2, 0x3000);
        assert!(ib.push_load(a, pa, 0));
        assert!(ib.push_load(b, pb, 0));
        assert!(!ib.push_load(c, pc, 0), "full buffer rejects (AGU stall)");
        assert_eq!(ib.len(), 2);
    }

    #[test]
    fn oldest_load_leads_group() {
        let mut ib = InputBuffer::new(7);
        let (a, pa) = ld(5, 0x2000); // arrives cycle 1
        let (b, pb) = ld(9, 0x1000); // arrives cycle 0 => older
        ib.push_load(b, pb, 0);
        ib.push_load(a, pa, 1);
        let g = ib.select().expect("group");
        assert_eq!(g.vpage, VPageId::new(1));
        assert_eq!(g.loads[0].id, OpId(9));
    }

    #[test]
    fn same_cycle_ties_break_by_program_order() {
        let mut ib = InputBuffer::new(7);
        let (a, pa) = ld(7, 0x1000);
        let (b, pb) = ld(3, 0x2000);
        ib.push_load(a, pa, 0);
        ib.push_load(b, pb, 0);
        let g = ib.select().expect("group");
        assert_eq!(g.loads[0].id, OpId(3), "lower id = older in program order");
        assert_eq!(g.vpage, VPageId::new(2));
    }

    #[test]
    fn group_collects_same_page_and_counts_compares() {
        let mut ib = InputBuffer::new(7);
        for (i, addr) in [0x1000u64, 0x1040, 0x2000, 0x1080].iter().enumerate() {
            let (op, vp) = ld(i as u64, *addr);
            ib.push_load(op, vp, 0);
        }
        let g = ib.select().expect("group");
        assert_eq!(g.loads.len(), 3);
        assert_eq!(g.compares, 3, "three other valid entries compared");
        assert!(!g.include_mbe);
    }

    #[test]
    fn mbe_only_selected_when_no_loads_or_same_page() {
        let mut ib = InputBuffer::new(7);
        let mbe = MemOp::merge_evict(OpId(100), VAddr::new(0x5000), 16);
        assert!(ib.set_mbe(mbe, VPageId::new(5), 0));
        assert!(!ib.set_mbe(mbe, VPageId::new(5), 0), "one MBE slot");

        // Alone: the MBE leads.
        let g = ib.select().expect("group");
        assert!(g.include_mbe);
        assert!(g.loads.is_empty());

        // With a load on another page: the load leads, MBE excluded.
        let (a, pa) = ld(0, 0x1000);
        ib.push_load(a, pa, 1);
        let g = ib.select().expect("group");
        assert_eq!(g.vpage, VPageId::new(1));
        assert!(!g.include_mbe);

        // With a load on the MBE's page: both serviced together.
        let (b, pb) = ld(1, 0x5040);
        ib.push_load(b, pb, 1);
        ib.remove_load(OpId(0));
        let g = ib.select().expect("group");
        assert_eq!(g.vpage, VPageId::new(5));
        assert!(g.include_mbe);
    }

    #[test]
    fn remove_and_take() {
        let mut ib = InputBuffer::new(7);
        let (a, pa) = ld(0, 0x1000);
        ib.push_load(a, pa, 0);
        let mbe = MemOp::merge_evict(OpId(50), VAddr::new(0x1000), 16);
        ib.set_mbe(mbe, pa, 0);
        ib.remove_load(OpId(0));
        assert_eq!(ib.len(), 0);
        assert_eq!(ib.take_mbe().map(|m| m.id), Some(OpId(50)));
        assert!(ib.is_empty());
        assert!(ib.select().is_none());
    }
}
