//! Workload sources: the one abstraction a simulation draws instructions
//! from.
//!
//! PR 1 hard-wired every run to a [`BenchmarkProfile`]; this module widens
//! the input side of [`Simulator`] to three interchangeable sources:
//!
//! * [`ScenarioSource::Profile`] — one calibrated benchmark (the original
//!   path, still monomorphized and allocation-free);
//! * [`ScenarioSource::Scenario`] — a composed multi-phase / mixed /
//!   adversarial [`Scenario`];
//! * [`ScenarioSource::Replay`] — a recorded `.mtr` trace, streamed from
//!   disk record by record (the file is never materialized in memory).
//!
//! A generated source and its recorded replay produce **bit-identical**
//! summaries under the same configuration and seed: the seed only feeds
//! interface-internal randomness, never the trace.

use std::fs::File;
use std::io::{self, BufReader};
use std::path::PathBuf;

use malec_trace::profile::BenchmarkProfile;
use malec_trace::{Scenario, TraceReader, WorkloadGenerator};

use crate::metrics::RunSummary;
use crate::sim::Simulator;

/// Suite display name reported for composed scenarios.
pub const SCENARIO_SUITE: &str = "Scenario";
/// Suite display name reported for replayed traces.
pub const REPLAY_SUITE: &str = "Replay";

/// Where a simulation's instruction stream comes from.
#[derive(Clone, Debug)]
pub enum ScenarioSource {
    /// A single calibrated benchmark profile.
    Profile(BenchmarkProfile),
    /// A composed scenario (multi-phase, mixed, adversarial).
    Scenario(Scenario),
    /// A recorded `.mtr` trace streamed from disk.
    Replay {
        /// Workload name to report (usually the scenario that was
        /// recorded, so generator and replay runs digest identically).
        name: String,
        /// Path of the `.mtr` file.
        path: PathBuf,
    },
}

impl ScenarioSource {
    /// The workload name this source reports in summaries.
    pub fn name(&self) -> &str {
        match self {
            ScenarioSource::Profile(p) => p.name,
            ScenarioSource::Scenario(s) => &s.name,
            ScenarioSource::Replay { name, .. } => name,
        }
    }

    /// The suite display name this source reports.
    pub fn suite(&self) -> &'static str {
        match self {
            ScenarioSource::Profile(p) => p.suite.name(),
            ScenarioSource::Scenario(_) => SCENARIO_SUITE,
            ScenarioSource::Replay { .. } => REPLAY_SUITE,
        }
    }
}

impl From<BenchmarkProfile> for ScenarioSource {
    fn from(p: BenchmarkProfile) -> Self {
        ScenarioSource::Profile(p)
    }
}

impl From<Scenario> for ScenarioSource {
    fn from(s: Scenario) -> Self {
        ScenarioSource::Scenario(s)
    }
}

impl Simulator {
    /// Runs up to `insts` instructions drawn from `source` (a replayed
    /// trace shorter than `insts` simply ends early) and returns the
    /// summary.
    ///
    /// The replay run of a recorded generator stream is bit-identical to
    /// the generator run: same instructions, same interface seed, same
    /// summary.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a [`ScenarioSource::Replay`] file cannot
    /// be opened or its header is invalid. Generator sources cannot fail.
    pub fn run_source(
        &self,
        source: &ScenarioSource,
        insts: u64,
        seed: u64,
    ) -> io::Result<RunSummary> {
        let name = source.name().to_owned();
        let suite = source.suite();
        match source {
            ScenarioSource::Profile(p) => {
                let trace = WorkloadGenerator::new(p, seed).take(insts as usize);
                Ok(self.run_trace(name, suite, trace, seed))
            }
            ScenarioSource::Scenario(s) => {
                let trace = s.generator(seed).take(insts as usize);
                Ok(self.run_trace(name, suite, trace, seed))
            }
            ScenarioSource::Replay { path, .. } => {
                let file = File::open(path).map_err(|e| {
                    io::Error::new(e.kind(), format!("open {}: {e}", path.display()))
                })?;
                let reader = TraceReader::new(BufReader::new(file))?;
                let trace = reader.into_insts().take(insts as usize);
                Ok(self.run_trace(name, suite, trace, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::scenario::preset_named;
    use malec_trace::{benchmark_named, write_trace};
    use malec_types::SimConfig;

    #[test]
    fn profile_source_matches_plain_run() {
        let gzip = benchmark_named("gzip").expect("gzip exists");
        let sim = Simulator::new(SimConfig::malec());
        let via_source = sim
            .run_source(&ScenarioSource::Profile(gzip.clone()), 4_000, 7)
            .expect("generator sources cannot fail");
        let direct = sim.run(&gzip, 4_000, 7);
        assert_eq!(via_source.core, direct.core);
        assert_eq!(via_source.counters, direct.counters);
        assert_eq!(via_source.benchmark, direct.benchmark);
    }

    #[test]
    fn scenario_sources_run_on_every_interface() {
        let scenario = preset_named("mixed_int_media_thrash").expect("preset");
        for cfg in [
            SimConfig::base1ldst(),
            SimConfig::base2ld1st(),
            SimConfig::malec(),
        ] {
            let s = Simulator::new(cfg)
                .run_source(&ScenarioSource::Scenario(scenario.clone()), 6_000, 3)
                .expect("generator sources cannot fail");
            assert_eq!(s.core.committed, 6_000, "{}", s.config);
            assert_eq!(s.benchmark, "mixed_int_media_thrash");
            assert_eq!(s.suite, SCENARIO_SUITE);
        }
    }

    #[test]
    fn replay_is_bit_identical_to_the_generator_run() {
        let scenario = preset_named("store_burst").expect("preset");
        let seed = 31;
        let insts = 5_000u64;
        let trace: Vec<_> = scenario.generator(seed).take(insts as usize).collect();
        let dir = std::env::temp_dir();
        let path = dir.join("malec_source_test_store_burst.mtr");
        let mut buf = Vec::new();
        write_trace(&mut buf, trace.iter().copied()).expect("encode");
        std::fs::write(&path, &buf).expect("write trace file");

        let sim = Simulator::new(SimConfig::malec());
        let generated = sim
            .run_source(&ScenarioSource::Scenario(scenario.clone()), insts, seed)
            .expect("generator run");
        let replayed = sim
            .run_source(
                &ScenarioSource::Replay {
                    name: scenario.name.clone(),
                    path: path.clone(),
                },
                insts,
                seed,
            )
            .expect("replay run");
        std::fs::remove_file(&path).ok();

        assert_eq!(generated.core, replayed.core);
        assert_eq!(generated.interface, replayed.interface);
        assert_eq!(generated.counters, replayed.counters);
        assert_eq!(generated.benchmark, replayed.benchmark);
        assert_eq!(
            generated.energy.dynamic.to_bits(),
            replayed.energy.dynamic.to_bits()
        );
    }

    #[test]
    fn replay_of_missing_file_reports_the_path() {
        let err = Simulator::new(SimConfig::malec())
            .run_source(
                &ScenarioSource::Replay {
                    name: "ghost".into(),
                    path: PathBuf::from("/nonexistent/ghost.mtr"),
                },
                100,
                1,
            )
            .expect_err("missing file must error");
        assert!(err.to_string().contains("ghost.mtr"), "{err}");
    }

    #[test]
    fn short_replay_ends_early_instead_of_hanging() {
        let gzip = benchmark_named("gzip").expect("gzip exists");
        let trace: Vec<_> = WorkloadGenerator::new(&gzip, 1).take(500).collect();
        let path = std::env::temp_dir().join("malec_source_test_short.mtr");
        let mut buf = Vec::new();
        write_trace(&mut buf, trace.iter().copied()).expect("encode");
        std::fs::write(&path, &buf).expect("write");
        let s = Simulator::new(SimConfig::base1ldst())
            .run_source(
                &ScenarioSource::Replay {
                    name: "short".into(),
                    path: path.clone(),
                },
                10_000,
                1,
            )
            .expect("replay");
        std::fs::remove_file(&path).ok();
        assert_eq!(s.core.committed, 500, "trace length caps the run");
    }
}
