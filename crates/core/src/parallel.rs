//! Deterministic fork-join parallelism for independent simulation cells.
//!
//! Every `(benchmark, configuration)` cell of a sweep is a self-contained,
//! seeded `Simulator::run` — no shared state, bit-reproducible output — so
//! a sweep is embarrassingly parallel. The build environment has no access
//! to crates.io (so no `rayon`); this module provides the one primitive the
//! sweeps need on top of `std::thread::scope`: an order-preserving parallel
//! map with atomic work-stealing over the item list.
//!
//! Results are written to the output slot matching the input index, so the
//! output of [`parallel_map`] is **identical** to the serial
//! `items.map(f).collect()` no matter how the items were interleaved across
//! threads — determinism of the sweep matrix does not depend on scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads (beyond this, memory bandwidth — not the
/// core count — limits simulator throughput).
const MAX_THREADS: usize = 32;

/// The number of worker threads a parallel sweep will use.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The number of workers [`parallel_map`] actually runs for `items` items —
/// [`worker_count`] capped by the item count (a 24-cell sweep never spawns
/// 32 threads). This is the figure reports should quote.
pub fn workers_used(items: usize) -> usize {
    worker_count().min(items).max(1)
}

/// [`workers_used`] with an optional operator-imposed cap (the `--jobs N`
/// flag of `malec-cli run`, `malec-bench` and `malec-cli serve`): the
/// fan-out for `items` items, never exceeding `cap`. `Some(0)` and
/// `Some(1)` both mean serial.
pub fn workers_for(items: usize, cap: Option<usize>) -> usize {
    workers_used(items).min(cap.unwrap_or(usize::MAX)).max(1)
}

/// Maps `f` over `items` in parallel, preserving input order in the output.
///
/// Spawns up to [`worker_count`] scoped threads which claim items through a
/// shared atomic cursor (dynamic load balancing: simulation cells differ in
/// cost by an order of magnitude between benchmarks). Falls back to a plain
/// serial map for a single worker or a single item.
///
/// # Panics
///
/// Panics if any worker panicked (the scope joins all threads first and
/// re-raises as "a scoped thread panicked"; the original message appears
/// in the worker's own backtrace).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count();
    parallel_map_with(items, f, workers)
}

/// [`parallel_map`] with an explicit worker count (tests force multiple
/// workers even on single-core machines; `0` and `1` both mean serial).
pub fn parallel_map_with<T, R, F>(items: Vec<T>, f: F, workers: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let items = &items;
    let f = &f;

    // Hand each worker a disjoint set of output slots, discovered through
    // the shared cursor. Slots are disjoint by construction (fetch_add), so
    // the unsafe write below never aliases; the scope guarantees all writes
    // complete before `results` is read again.
    let results_ptr = SendPtr(results.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let results_ptr = &results_ptr;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    // SAFETY: `i` is unique to this worker (atomic
                    // fetch_add), in bounds (checked above), and the slot
                    // outlives the scope.
                    unsafe {
                        *results_ptr.0.add(i) = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every slot written by exactly one worker"))
        .collect()
}

/// Raw-pointer wrapper asserting cross-thread sendability for the disjoint
/// slot writes above.
struct SendPtr<T>(*mut T);

// SAFETY: workers write disjoint indices and the pointee outlives the scope.
unsafe impl<T: Send> Sync for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        // Force 4 workers so the threaded path runs even on 1-core boxes.
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map_with(items.clone(), |&x| x * x, 4);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn workers_used_is_capped_by_items() {
        assert_eq!(workers_used(0), 1);
        assert_eq!(workers_used(1), 1);
        assert!(workers_used(1_000) <= worker_count());
        assert!(workers_used(1_000) >= 1);
    }

    #[test]
    fn workers_for_honors_the_jobs_cap() {
        assert_eq!(workers_for(1_000, Some(1)), 1);
        assert_eq!(workers_for(1_000, Some(0)), 1, "0 means serial, not zero");
        assert_eq!(workers_for(1_000, None), workers_used(1_000));
        assert!(workers_for(1_000, Some(2)) <= 2);
        assert_eq!(workers_for(1, Some(8)), 1, "item count still caps");
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u64>::new(), |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(vec![7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn balances_uneven_work() {
        // Items with wildly different costs still land in their own slots.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(
            items,
            |&x| {
                let spins = if x % 7 == 0 { 10_000 } else { 10 };
                (0..spins).fold(x, |acc, _| std::hint::black_box(acc))
            },
            4,
        );
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map_with(
            (0..128u64).collect(),
            |&x| {
                if x == 77 {
                    panic!("worker boom");
                }
                x
            },
            4,
        );
    }
}
