//! The MALEC interface: Page-Based Memory Access Grouping (Sec. IV) plus
//! Page-Based Way Determination (Sec. V).
//!
//! Per cycle:
//!
//! 1. the [`InputBuffer`] selects the highest-priority entry; its vPageID
//!    goes to the uTLB (one translation per cycle — the single-port
//!    restriction that saves the energy) and is compared against all other
//!    valid entries to form the page group;
//! 2. the arbitration logic picks at most one access per cache bank, merges
//!    loads to the same line (evaluating only the three entries consecutive
//!    to each bank leader, with narrow in-page comparators), and caps
//!    selected loads at the number of result buses;
//! 3. way information for the selected lines comes from the uWT entry that
//!    arrived with the uTLB hit: *valid* way info means the access bypasses
//!    all tag arrays and touches a single data way ("reduced access");
//! 4. unserviced entries stay in the Input Buffer for later cycles; the
//!    merge-buffer eviction (lowest priority) writes its bank when free.
//!
//! Way-table maintenance follows Sec. V exactly: validity set/cleared on
//! line fills/evictions via reverse (physical) uTLB/TLB lookups, uWT→WT
//! full-entry synchronization on uTLB eviction, WT entry invalidation on TLB
//! eviction, and the last-entry feedback register that updates the uWT when
//! a conventional access hits a line the tables called unknown (this is the
//! mechanism that lifts coverage from ~75 % to ~94 %, Sec. VI-C).

use malec_cpu::interface::{AcceptKind, L1DataInterface};
use malec_energy::EnergyCounters;
use malec_mem::hierarchy::MemoryHierarchy;
use malec_mem::l1::L1FillEvent;
use malec_types::addr::{LineAddr, PPageId, VPageId, WayId};
use malec_types::config::{InterfaceKind, SimConfig, WayDetermination};
use malec_types::op::{MemOp, OpId};
use malec_types::params::MERGE_COMPARE_WINDOW;

use crate::input_buffer::{IbEntry, InputBuffer};
use crate::metrics::InterfaceStats;
use crate::mmu::{Mmu, Translation, TranslationPath};
use crate::pending::{CompletionQueue, FillTable};
use crate::sbmb::{MergeBuffer, StoreBuffer};
use crate::waytable::{MicroWayTable, WayTable};
use crate::wdu::Wdu;

/// One arbitration candidate: the op, its physical line, its bank, and its
/// 32-byte merge window within the line.
type LoadInfo = (MemOp, LineAddr, usize, u64);

/// The MALEC L1 data interface.
///
/// # Example
///
/// ```
/// use malec_core::malec::MalecInterface;
/// use malec_types::SimConfig;
///
/// let iface = MalecInterface::new(&SimConfig::malec(), 1);
/// assert_eq!(iface.stats().groups, 0);
/// ```
#[derive(Debug)]
pub struct MalecInterface {
    config: SimConfig,
    mmu: Mmu,
    hierarchy: MemoryHierarchy,
    sb: StoreBuffer,
    mb: MergeBuffer,
    ib: InputBuffer,
    uwt: Option<MicroWayTable>,
    wt: Option<WayTable>,
    wdu: Option<Wdu>,
    feedback: bool,
    counters: EnergyCounters,
    stats: InterfaceStats,
    completions: CompletionQueue,
    pending_mbe: std::collections::VecDeque<MemOp>,
    pending_fills: FillTable,
    last_translation: Option<(VPageId, PPageId)>,
    cycle: u64,
    // Reusable per-tick scratch: owned by the interface so the steady-state
    // tick performs no heap allocation (capacities are bounded by the Input
    // Buffer size / bank count and reached within the first few cycles).
    scratch_group: Vec<IbEntry>,
    scratch_infos: Vec<LoadInfo>,
    scratch_selected: Vec<(usize, usize)>,
    bank_leader: Vec<Option<usize>>,
    leader_done: Vec<u64>,
}

impl MalecInterface {
    /// Builds the MALEC interface for `config` (must be
    /// [`InterfaceKind::Malec`]).
    ///
    /// # Panics
    ///
    /// Panics if called with a baseline interface kind.
    pub fn new(config: &SimConfig, seed: u64) -> Self {
        assert!(
            matches!(config.interface, InterfaceKind::Malec),
            "use BaselineInterface for the baseline configurations"
        );
        let lines = config.page.lines_per_page();
        let banks = config.l1.banks();
        let ways = config.l1.ways();
        let (uwt, wt, wdu, feedback) = match config.way_determination {
            WayDetermination::WayTables => (
                Some(MicroWayTable::new(
                    usize::from(config.utlb_entries),
                    lines,
                    banks,
                    ways,
                )),
                Some(WayTable::new(
                    usize::from(config.tlb_entries),
                    lines,
                    banks,
                    ways,
                )),
                None,
                true,
            ),
            WayDetermination::WayTablesNoFeedback => (
                Some(MicroWayTable::new(
                    usize::from(config.utlb_entries),
                    lines,
                    banks,
                    ways,
                )),
                Some(WayTable::new(
                    usize::from(config.tlb_entries),
                    lines,
                    banks,
                    ways,
                )),
                None,
                false,
            ),
            WayDetermination::Wdu(n) => (None, None, Some(Wdu::new(usize::from(n.max(1)))), true),
            WayDetermination::None => (None, None, None, false),
        };
        Self {
            config: config.clone(),
            mmu: Mmu::new(
                usize::from(config.utlb_entries),
                usize::from(config.tlb_entries),
                seed,
            ),
            hierarchy: MemoryHierarchy::for_config(config),
            sb: StoreBuffer::new(usize::from(config.sb_entries)),
            mb: MergeBuffer::new(
                usize::from(config.mb_entries),
                config.page.line_offset_bits(),
            ),
            ib: InputBuffer::new(usize::from(config.input_buffer_held) + 4),
            uwt,
            wt,
            wdu,
            feedback,
            counters: EnergyCounters::default(),
            stats: InterfaceStats::default(),
            completions: CompletionQueue::with_capacity(32),
            pending_mbe: std::collections::VecDeque::with_capacity(4),
            pending_fills: FillTable::with_capacity(128),
            last_translation: None,
            cycle: 0,
            scratch_group: Vec::with_capacity(usize::from(config.input_buffer_held) + 4),
            scratch_infos: Vec::with_capacity(usize::from(config.input_buffer_held) + 4),
            scratch_selected: Vec::with_capacity(usize::from(config.result_buses).max(4)),
            bank_leader: vec![None; banks as usize],
            leader_done: vec![0; banks as usize],
        }
    }

    /// Accumulated energy event counters.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Interface statistics (groups, merges, coverage).
    pub fn stats(&self) -> &InterfaceStats {
        &self.stats
    }

    /// The memory hierarchy (for miss-rate reporting).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// The MMU (for TLB statistics).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// The WDU coverage, when the WDU substitutes the way tables.
    pub fn wdu_coverage(&self) -> Option<f64> {
        self.wdu.as_ref().map(Wdu::coverage)
    }

    fn vpage_of(&self, op: &MemOp) -> VPageId {
        self.config.page.vpage_of(op.vaddr)
    }

    /// Physical line for an op given its page translation.
    fn line_of(&self, op: &MemOp, ppage: PPageId) -> LineAddr {
        let page = self.config.page;
        let offset = op.vaddr.raw() & (page.page_bytes() - 1);
        page.line_of((ppage.raw() << page.page_offset_bits()) | offset)
    }

    /// Translates with energy accounting and way-table synchronization.
    fn translate_counted(&mut self, vpage: VPageId) -> Translation {
        self.counters.utlb_lookups += 1;
        self.stats.translations += 1;
        let t = self.mmu.translate(vpage);
        match t.path {
            TranslationPath::MicroHit => {}
            TranslationPath::TlbHit => {
                self.counters.tlb_lookups += 1;
                self.counters.utlb_fills += 1;
            }
            TranslationPath::Walk => {
                self.counters.tlb_lookups += 1;
                self.counters.tlb_fills += 1;
                self.counters.utlb_fills += 1;
            }
        }

        if let (Some(uwt), Some(wt)) = (self.uwt.as_mut(), self.wt.as_mut()) {
            // uWT eviction: write the full entry back to the WT, if the
            // evicted page still has a TLB (and therefore WT) slot.
            if let Some((uslot, evicted)) = t.utlb_evicted {
                if let Some(tslot) = self.mmu.tlb_slot_of_ppage(evicted.ppage) {
                    wt.entry_mut(tslot).copy_from(uwt.entry(uslot));
                    self.counters.wt_writes += 1;
                }
            }
            match t.path {
                TranslationPath::MicroHit => {}
                TranslationPath::TlbHit => {
                    // The WT entry travels with the TLB hit; install it as
                    // the page's uWT entry.
                    let entry = wt.entry(t.tlb_slot).clone();
                    uwt.entry_mut(t.utlb_slot).copy_from(&entry);
                    self.counters.wt_reads += 1;
                    self.counters.uwt_writes += 1;
                }
                TranslationPath::Walk => {
                    // Fresh page: all way information invalidated (Sec. V —
                    // if a TLB-evicted page is re-accessed, a new WT entry
                    // is allocated with everything unknown). Invalidation is
                    // a flash-clear, priced as a slot update rather than a
                    // full-entry write.
                    wt.entry_mut(t.tlb_slot).clear_all();
                    self.counters.wt_bit_updates += 1;
                    uwt.entry_mut(t.utlb_slot).clear_all();
                    self.counters.uwt_bit_updates += 1;
                }
            }
        }

        self.last_translation = Some((vpage, t.ppage));
        t
    }

    /// Applies a fill/eviction event to the way-determination state
    /// (validity bits set on fills, cleared on evictions; physical-tag
    /// reverse lookups find the owning uWT/WT entry).
    fn on_fill_event(&mut self, ev: L1FillEvent) {
        self.counters
            .l1_line_fill(self.config.l1.sub_blocks_per_line());
        match self.config.way_determination {
            WayDetermination::None => {}
            WayDetermination::Wdu(_) => {
                let wdu = self.wdu.as_mut().expect("WDU configured");
                if let Some(evicted) = ev.evicted {
                    wdu.invalidate(evicted);
                    self.counters.wdu_writes += 1;
                }
                wdu.record(ev.filled, ev.way);
                self.counters.wdu_writes += 1;
            }
            WayDetermination::WayTables | WayDetermination::WayTablesNoFeedback => {
                if let Some(evicted) = ev.evicted {
                    self.update_way_slot(evicted, None);
                }
                self.update_way_slot(ev.filled, Some(ev.way));
            }
        }
    }

    /// Sets (`Some(way)`) or clears (`None`) the way slot for a physical
    /// line, searching the uWT first, then the WT (Sec. V: "although the WT
    /// includes all uWT entries, it is only updated if no corresponding uWT
    /// entry was found").
    fn update_way_slot(&mut self, line: LineAddr, way: Option<WayId>) {
        let lines_per_page = u64::from(self.config.page.lines_per_page());
        let ppage = PPageId::new(line.raw() / lines_per_page);
        let line_in_page = (line.raw() % lines_per_page) as u8;

        self.counters.utlb_reverse_lookups += 1;
        if let Some(uslot) = self.mmu.utlb_slot_of_ppage(ppage) {
            let entry = self.uwt.as_mut().expect("uWT configured").entry_mut(uslot);
            match way {
                Some(w) => {
                    entry.set(line_in_page, w);
                }
                None => entry.clear(line_in_page),
            }
            self.counters.uwt_bit_updates += 1;
            return;
        }
        self.counters.tlb_reverse_lookups += 1;
        if let Some(tslot) = self.mmu.tlb_slot_of_ppage(ppage) {
            let entry = self.wt.as_mut().expect("WT configured").entry_mut(tslot);
            match way {
                Some(w) => {
                    entry.set(line_in_page, w);
                }
                None => entry.clear(line_in_page),
            }
            self.counters.wt_bit_updates += 1;
        }
    }

    /// Way prediction for a line about to be accessed. Returns `Some(way)`
    /// when the access may bypass the tag arrays.
    fn predict_way(&mut self, utlb_slot: usize, line: LineAddr) -> Option<WayId> {
        let lines_per_page = u64::from(self.config.page.lines_per_page());
        let line_in_page = (line.raw() % lines_per_page) as u8;
        match self.config.way_determination {
            WayDetermination::None => None,
            WayDetermination::Wdu(_) => {
                self.counters.wdu_lookups += 1;
                self.wdu.as_mut().expect("WDU configured").lookup(line)
            }
            WayDetermination::WayTables | WayDetermination::WayTablesNoFeedback => self
                .uwt
                .as_ref()
                .expect("uWT configured")
                .entry(utlb_slot)
                .get(line_in_page),
        }
    }

    /// Feedback path: a conventional access hit a line the predictor called
    /// unknown. The last-entry register lets the uWT update without another
    /// uTLB lookup.
    fn feedback_update(&mut self, utlb_slot: usize, line: LineAddr, way: WayId) {
        match self.config.way_determination {
            WayDetermination::Wdu(_) => {
                self.wdu.as_mut().expect("WDU configured").record(line, way);
                self.counters.wdu_writes += 1;
            }
            WayDetermination::WayTables if self.feedback => {
                let lines_per_page = u64::from(self.config.page.lines_per_page());
                let line_in_page = (line.raw() % lines_per_page) as u8;
                self.uwt
                    .as_mut()
                    .expect("uWT configured")
                    .entry_mut(utlb_slot)
                    .set(line_in_page, way);
                self.counters.uwt_bit_updates += 1;
            }
            _ => {}
        }
    }

    /// The fill-steering restriction: when enabled, fills avoid the way the
    /// line's WT slot cannot encode.
    fn fill_exclusion(&self, line: LineAddr) -> Option<WayId> {
        if !self.config.restrict_fill_ways
            || !matches!(
                self.config.way_determination,
                WayDetermination::WayTables | WayDetermination::WayTablesNoFeedback
            )
        {
            return None;
        }
        let lines_per_page = u64::from(self.config.page.lines_per_page());
        let line_in_page = (line.raw() % lines_per_page) as u8;
        let banks = self.config.l1.banks();
        let ways = self.config.l1.ways();
        Some(WayId(((u32::from(line_in_page) / banks) % ways) as u8))
    }

    /// Services this cycle's page group. Returns how many loads were
    /// serviced.
    ///
    /// Steady-state allocation-free: the group members, arbitration
    /// candidates, selection list, per-bank leader slots and per-bank
    /// completion cycles all live in buffers owned by `self` and reused
    /// every cycle. The member/candidate/selection buffers are moved out
    /// with `mem::take` for the duration of the call (a pointer swap, not
    /// an allocation) so `self` methods stay callable, and moved back in
    /// before returning.
    fn service_group(&mut self) -> usize {
        let mut group_loads = std::mem::take(&mut self.scratch_group);
        let Some(group) = self.ib.select_into(&mut group_loads) else {
            self.scratch_group = group_loads;
            return 0;
        };
        self.counters.input_buffer_compares += u64::from(group.compares);

        // One translation per cycle, shared by the whole group. Slow paths
        // (TLB hit after uTLB miss, page-table walk) add latency to every
        // member's completion but do not block later groups — the walker is
        // a separate engine, exactly as in the baselines' model.
        let t = self.translate_counted(group.vpage);
        let group_extra = u64::from(t.path.extra_latency());

        // uWT way information arrives with the translation: one entry
        // evaluation regardless of group size (Sec. V scalability).
        if self.uwt.is_some() {
            self.counters.uwt_reads += 1;
        }

        // --- Arbitration: per-bank leaders, same-line merging, result-bus cap.
        let window_bytes = 2 * self.config.l1.sub_block_bytes();
        let mut infos = std::mem::take(&mut self.scratch_infos);
        infos.clear();
        for entry in &group_loads {
            let op = entry.op;
            let line = self.line_of(&op, t.ppage);
            let bank = self.config.l1.bank_of_line(line).0 as usize;
            let window = (op.vaddr.raw() & (self.config.page.line_bytes() - 1)) / window_bytes;
            infos.push((op, line, bank, window));
        }

        self.bank_leader.fill(None);
        // (member index, leader index) — leader merges with itself.
        let mut selected = std::mem::take(&mut self.scratch_selected);
        selected.clear();
        for (i, info) in infos.iter().enumerate() {
            if selected.len() >= usize::from(self.config.result_buses) {
                break;
            }
            match self.bank_leader[info.2] {
                None => {
                    self.bank_leader[info.2] = Some(i);
                    selected.push((i, i));
                }
                Some(li) => {
                    if self.config.load_merging && i - li <= usize::from(MERGE_COMPARE_WINDOW) {
                        self.counters.arbitration_compares += 1;
                        let leader = &infos[li];
                        if leader.1 == info.1 && leader.3 == info.3 {
                            selected.push((i, li));
                        }
                    }
                }
            }
        }

        // --- Execute one L1 access per bank leader.
        let mut serviced = 0usize;
        for &(i, li) in &selected {
            let (op, line, bank, _window) = infos[i];
            let done = if i == li {
                let done = self.execute_load_access(t.utlb_slot, line, group_extra);
                // A merged member shares its leader's bank, so the leader's
                // completion cycle is keyed by bank id — a fixed-size array
                // instead of the per-pass HashMap this used to be.
                self.leader_done[bank] = done;
                done
            } else {
                self.stats.merged_loads += 1;
                // The WDU (unlike the way tables) looks up every parallel
                // reference individually — that is why it needs four ports.
                if self.wdu.is_some() {
                    self.counters.wdu_lookups += 1;
                }
                self.leader_done[bank]
            };
            // Narrow SB/MB comparators per access; the page segment is
            // shared below.
            self.counters.sb_lookups_narrow += 1;
            self.counters.mb_lookups_narrow += 1;
            self.completions.push(done, op.id);
            self.ib.remove_load(op.id);
            self.stats.loads_serviced += 1;
            self.stats.group_loads += 1;
            serviced += 1;
        }
        if serviced > 0 {
            self.stats.groups += 1;
            self.counters.sb_lookups_page_segment += 1;
            self.counters.mb_lookups_page_segment += 1;
        }

        // --- The MBE (lowest priority) writes its bank if no load claimed it.
        if group.include_mbe {
            if let Some(mbe) = self.ib.take_mbe() {
                let line = self.line_of(&mbe, t.ppage);
                let bank = self.config.l1.bank_of_line(line).0 as usize;
                if self.bank_leader[bank].is_none() {
                    self.execute_mbe_write(t.utlb_slot, line);
                } else {
                    // Bank busy: put it back for a later cycle.
                    let vp = self.vpage_of(&mbe);
                    self.ib.set_mbe(mbe, vp, self.cycle);
                }
            }
        }

        self.scratch_group = group_loads;
        self.scratch_infos = infos;
        self.scratch_selected = selected;
        serviced
    }

    /// Performs the actual cache access for a bank leader; returns the
    /// completion cycle.
    fn execute_load_access(&mut self, utlb_slot: usize, line: LineAddr, group_extra: u64) -> u64 {
        // MALEC's sub-blocked data arrays return two adjacent sub-blocks on
        // every read (Sec. IV), doubling merge opportunities.
        let sub_blocks = 2u32;
        let predicted = self.predict_way(utlb_slot, line);
        let exclusion = self.fill_exclusion(line);
        let outcome = self.hierarchy.resolve_line(line, exclusion);

        match (outcome.l1_hit, predicted) {
            (true, Some(way)) => {
                debug_assert_eq!(way, outcome.way, "way tables must track true residency");
                self.counters.l1_reduced_read(sub_blocks);
                self.stats.reduced_accesses += 1;
            }
            (true, None) => {
                self.counters
                    .l1_conventional_read(self.config.l1.ways(), sub_blocks);
                self.stats.conventional_accesses += 1;
                self.feedback_update(utlb_slot, line, outcome.way);
            }
            (false, _) => {
                // The discovering access is conventional; the fill installs
                // way information via the validity maintenance, so the
                // replay that returns the data after the fill is a
                // *reduced* access — way prediction removes the redundant
                // tag lookup even on the miss path.
                self.counters
                    .l1_conventional_read(self.config.l1.ways(), sub_blocks);
                self.stats.conventional_accesses += 1;
                if let Some(fill) = outcome.fill {
                    self.on_fill_event(fill);
                }
                if self.uwt.is_some() || self.wdu.is_some() {
                    self.counters.l1_reduced_read(sub_blocks);
                    self.stats.reduced_accesses += 1;
                } else {
                    self.counters
                        .l1_conventional_read(self.config.l1.ways(), sub_blocks);
                    self.stats.conventional_accesses += 1;
                }
            }
        }
        let mut done = self.cycle
            + u64::from(self.config.l1_latency())
            + group_extra
            + u64::from(outcome.extra_latency);
        // MSHR semantics: an access to a line with an outstanding fill
        // completes no earlier than that fill.
        if outcome.l1_hit {
            if let Some(ready) = self.pending_fills.ready_after(line.raw(), self.cycle) {
                done = done.max(ready);
            }
        } else {
            self.pending_fills.note_fill(line.raw(), done);
        }
        done
    }

    /// Writes a merge-buffer eviction to the L1.
    fn execute_mbe_write(&mut self, utlb_slot: usize, line: LineAddr) {
        let predicted = self.predict_way(utlb_slot, line);
        let exclusion = self.fill_exclusion(line);
        let outcome = self.hierarchy.resolve_line(line, exclusion);
        match (outcome.l1_hit, predicted) {
            (true, Some(way)) => {
                debug_assert_eq!(way, outcome.way);
                self.counters.l1_reduced_write(2);
                self.stats.reduced_accesses += 1;
            }
            (true, None) => {
                self.counters.l1_write(2);
                self.stats.conventional_accesses += 1;
                self.feedback_update(utlb_slot, line, outcome.way);
            }
            (false, _) => {
                self.counters.l1_write(2);
                self.stats.conventional_accesses += 1;
                if let Some(fill) = outcome.fill {
                    self.on_fill_event(fill);
                }
            }
        }
        self.stats.mbe_writes += 1;
    }

    /// Moves committed stores toward the merge buffer and stages MB
    /// evictions for the Input Buffer.
    fn drain_stores(&mut self) {
        // Stage at most one MBE into the Input Buffer per cycle.
        if !self.ib.has_mbe() {
            if let Some(mbe) = self.pending_mbe.pop_front() {
                let vp = self.vpage_of(&mbe);
                self.ib.set_mbe(mbe, vp, self.cycle);
            }
        }
        // Keep the staging queue bounded: stall the drain if it backs up.
        if self.pending_mbe.len() >= 2 {
            return;
        }
        if let Some(op) = self.sb.pop_committed() {
            if let Some(evicted) = self.mb.insert(op) {
                self.pending_mbe.push_back(MemOp::merge_evict(
                    evicted.rep.id,
                    evicted.rep.vaddr,
                    16,
                ));
            }
        }
    }
}

impl L1DataInterface for MalecInterface {
    fn tick(&mut self, cycle: u64, completed: &mut Vec<OpId>) {
        self.cycle = cycle;

        // 1. Deliver due completions (min-heap pop instead of a full scan).
        self.completions.drain_due(cycle, completed);
        self.pending_fills.prune(cycle);

        // 2. Service this cycle's page group.
        self.service_group();

        // 3. Store pipeline.
        self.drain_stores();

        // 4. Latency-variability accounting.
        self.stats.held_load_cycles += self.ib.len() as u64;
    }

    fn offer_load(&mut self, op: MemOp) -> AcceptKind {
        if !self.ib.can_accept_load() {
            return AcceptKind::Rejected;
        }
        let vp = self.vpage_of(&op);
        let pushed = self.ib.push_load(op, vp, self.cycle);
        debug_assert!(pushed);
        AcceptKind::Accepted
    }

    fn offer_store(&mut self, op: MemOp) -> AcceptKind {
        if !self.sb.has_room() {
            return AcceptKind::Rejected;
        }
        let vp = self.vpage_of(&op);
        // Share the translation result when the store hits the page that
        // was just translated (Sec. IV: translation results are shared
        // between loads and stores).
        match self.last_translation {
            Some((last_vp, _)) if last_vp == vp => {
                self.stats.store_translations_shared += 1;
            }
            _ => {
                self.translate_counted(vp);
            }
        }
        let pushed = self.sb.push(op);
        debug_assert!(pushed);
        self.stats.stores_accepted += 1;
        AcceptKind::Accepted
    }

    fn commit_store(&mut self, id: OpId) {
        self.sb.mark_committed(id);
    }

    fn pending_loads(&self) -> usize {
        self.ib.len() + self.completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::addr::VAddr;

    fn iface() -> MalecInterface {
        MalecInterface::new(&SimConfig::malec(), 1)
    }

    fn ld(id: u64, addr: u64) -> MemOp {
        MemOp::load(OpId(id), VAddr::new(addr), 4)
    }

    fn run_until_done(i: &mut MalecInterface, from: u64, ids: usize) -> Vec<(u64, OpId)> {
        let mut done = Vec::new();
        let mut c = from;
        while done.len() < ids && c < from + 10_000 {
            let mut out = Vec::new();
            i.tick(c, &mut out);
            for id in out {
                done.push((c, id));
            }
            c += 1;
        }
        done
    }

    #[test]
    fn same_page_loads_service_in_one_group() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        // Four same-page loads to four different lines (= four banks).
        for k in 0..4u64 {
            assert!(i.offer_load(ld(k, 0x1000 + k * 64)).is_accepted());
        }
        let done = run_until_done(&mut i, 1, 4);
        assert_eq!(done.len(), 4);
        assert!(i.stats().groups >= 1);
        // One translation serves all four loads.
        assert_eq!(i.counters().utlb_lookups, 1);
        assert_eq!(i.stats().group_loads, 4);
    }

    #[test]
    fn different_pages_need_multiple_cycles() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        for k in 0..3u64 {
            assert!(i.offer_load(ld(k, 0x1000 + k * 0x1000)).is_accepted());
        }
        run_until_done(&mut i, 1, 3);
        assert!(
            i.stats().groups >= 3,
            "three pages cannot share a group: {} groups",
            i.stats().groups
        );
        assert_eq!(i.counters().utlb_lookups, 3);
    }

    #[test]
    fn same_line_loads_merge() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        // Warm the line.
        i.offer_load(ld(0, 0x1000));
        run_until_done(&mut i, 1, 1);
        let c0 = 500;
        i.tick(c0, &mut Vec::new());
        // Two loads to the same 32-byte window of one line.
        i.offer_load(ld(10, 0x1000));
        i.offer_load(ld(11, 0x1008));
        let done = run_until_done(&mut i, c0 + 1, 2);
        assert_eq!(done.len(), 2);
        assert_eq!(i.stats().merged_loads, 1, "second load rides along");
        // Both complete in the same cycle.
        assert_eq!(done[0].0, done[1].0);
    }

    #[test]
    fn merging_disabled_by_config() {
        let cfg = SimConfig::malec().with_load_merging(false);
        let mut i = MalecInterface::new(&cfg, 1);
        i.tick(0, &mut Vec::new());
        i.offer_load(ld(0, 0x1000));
        run_until_done(&mut i, 1, 1);
        i.tick(500, &mut Vec::new());
        i.offer_load(ld(10, 0x1000));
        i.offer_load(ld(11, 0x1008));
        run_until_done(&mut i, 501, 2);
        assert_eq!(i.stats().merged_loads, 0);
    }

    #[test]
    fn way_tables_enable_reduced_accesses_on_reuse() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        // First access: miss + fill (installs way info); the post-fill
        // replay that returns the data is already a reduced access.
        i.offer_load(ld(0, 0x3000));
        run_until_done(&mut i, 1, 1);
        assert_eq!(i.stats().reduced_accesses, 1);
        assert_eq!(i.stats().conventional_accesses, 1);
        // Second access to the same line: way known + valid => reduced.
        i.tick(600, &mut Vec::new());
        i.offer_load(ld(1, 0x3010));
        run_until_done(&mut i, 601, 1);
        assert_eq!(i.stats().reduced_accesses, 2);
        assert_eq!(
            i.counters().l1_tag_bank_reads,
            1,
            "only the miss touched tags"
        );
    }

    #[test]
    fn input_buffer_full_rejects() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        let mut accepted = 0;
        for k in 0..20u64 {
            if i.offer_load(ld(k, 0x1000 + k * 0x1000)).is_accepted() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 7, "3 held + 4 fresh slots");
    }

    #[test]
    fn store_translation_shares_group_page() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        i.offer_load(ld(0, 0x5000));
        run_until_done(&mut i, 1, 1);
        let lookups_before = i.counters().utlb_lookups;
        // Store to the page just translated: shared, no new lookup.
        assert!(i
            .offer_store(MemOp::store(OpId(1), VAddr::new(0x5040), 4))
            .is_accepted());
        assert_eq!(i.counters().utlb_lookups, lookups_before);
        assert_eq!(i.stats().store_translations_shared, 1);
        // Store to a different page translates.
        assert!(i
            .offer_store(MemOp::store(OpId(2), VAddr::new(0x9000), 4))
            .is_accepted());
        assert_eq!(i.counters().utlb_lookups, lookups_before + 1);
    }

    #[test]
    fn mbe_write_reaches_l1() {
        let mut i = iface();
        i.tick(0, &mut Vec::new());
        // 5 committed stores to 5 lines on the same page: MB (4) evicts.
        for k in 0..5u64 {
            let op = MemOp::store(OpId(k), VAddr::new(0x7000 + k * 64), 4);
            assert!(i.offer_store(op).is_accepted());
            i.commit_store(OpId(k));
        }
        for c in 1..200 {
            i.tick(c, &mut Vec::new());
        }
        assert!(i.stats().mbe_writes >= 1);
        assert!(i.counters().l1_data_subblock_writes > 0);
    }

    #[test]
    fn result_buses_cap_parallel_loads() {
        let mut cfg = SimConfig::malec();
        cfg.result_buses = 2;
        let mut i = MalecInterface::new(&cfg, 1);
        i.tick(0, &mut Vec::new());
        for k in 0..4u64 {
            i.offer_load(ld(k, 0x1000 + k * 64));
        }
        // One tick of servicing: at most 2 loads selected.
        let mut out = Vec::new();
        i.tick(1, &mut out);
        assert!(i.stats().loads_serviced <= 2);
        run_until_done(&mut i, 2, 4);
        assert_eq!(i.stats().loads_serviced, 4, "the rest follow later");
    }

    #[test]
    fn wdu_variant_records_and_covers() {
        let cfg = SimConfig::malec().with_way_determination(WayDetermination::Wdu(16));
        let mut i = MalecInterface::new(&cfg, 1);
        i.tick(0, &mut Vec::new());
        i.offer_load(ld(0, 0x3000));
        run_until_done(&mut i, 1, 1);
        i.tick(600, &mut Vec::new());
        i.offer_load(ld(1, 0x3008));
        run_until_done(&mut i, 601, 1);
        // Reduced twice: the post-fill replay and the second access.
        assert_eq!(i.stats().reduced_accesses, 2);
        assert!(i.wdu_coverage().is_some());
        assert!(i.counters().wdu_lookups >= 2);
    }

    #[test]
    fn no_way_determination_is_always_conventional() {
        let cfg = SimConfig::malec().with_way_determination(WayDetermination::None);
        let mut i = MalecInterface::new(&cfg, 1);
        i.tick(0, &mut Vec::new());
        i.offer_load(ld(0, 0x3000));
        run_until_done(&mut i, 1, 1);
        i.tick(600, &mut Vec::new());
        i.offer_load(ld(1, 0x3008));
        run_until_done(&mut i, 601, 1);
        assert_eq!(i.stats().reduced_accesses, 0);
        // Discovery + conventional replay + the second access.
        assert_eq!(i.stats().conventional_accesses, 3);
    }

    #[test]
    fn feedback_ablation_lowers_reduced_accesses() {
        // Fill a line while its page is NOT in the uTLB, then access it:
        // with feedback the first conventional hit trains the uWT; without
        // it the access stays conventional forever (until a new fill).
        let run = |wd: WayDetermination| {
            let cfg = SimConfig::malec().with_way_determination(wd);
            let mut i = MalecInterface::new(&cfg, 1);
            i.tick(0, &mut Vec::new());
            // Touch page A (fills line, installs way info in uWT).
            i.offer_load(ld(0, 0xA000));
            run_until_done(&mut i, 1, 1);
            // Evict page A from the 16-entry uTLB *and* (with the fixed
            // seed) from the 64-entry random-replacement TLB by touching
            // 300 other pages. The +0x40 offset keeps every intermediate
            // line in bank 1, so page A's line (bank 0) cannot be evicted
            // from the cache itself.
            for k in 0..300u64 {
                i.offer_load(ld(100 + k, 0x10_0040 + k * 0x1000));
                run_until_done(&mut i, 700 + k * 50, 1);
            }
            // Re-access page A twice: line still cached, but way info lost.
            i.offer_load(ld(900, 0xA000));
            run_until_done(&mut i, 190_000, 1);
            i.offer_load(ld(901, 0xA008));
            run_until_done(&mut i, 195_000, 1);
            i.stats().reduced_accesses
        };
        let with_feedback = run(WayDetermination::WayTables);
        let without = run(WayDetermination::WayTablesNoFeedback);
        assert!(
            with_feedback > without,
            "feedback must recover lost way info: {with_feedback} vs {without}"
        );
    }
}
