//! Store Buffer and Merge Buffer.
//!
//! Stores execute speculatively into the Store Buffer (SB), commit, then
//! drain into the Merge Buffer (MB) which coalesces stores to the same
//! cache line. An MB allocation with the buffer full evicts the oldest
//! entry, which becomes an L1 write — in MALEC it enters the Input Buffer
//! as the lowest-priority element (Fig. 2b).

use std::collections::VecDeque;

use malec_types::addr::LineAddr;
use malec_types::op::{MemOp, OpId};

/// One store buffer entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct SbEntry {
    op: MemOp,
    committed: bool,
}

/// The store buffer: program-ordered stores awaiting commit and drain.
///
/// # Example
///
/// ```
/// use malec_core::sbmb::StoreBuffer;
/// use malec_types::op::{MemOp, OpId};
/// use malec_types::addr::VAddr;
///
/// let mut sb = StoreBuffer::new(24);
/// assert!(sb.push(MemOp::store(OpId(1), VAddr::new(0x100), 4)));
/// sb.mark_committed(OpId(1));
/// assert!(sb.pop_committed().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates an empty store buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs capacity");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether another store can be accepted.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a speculative store; returns false when full.
    pub fn push(&mut self, op: MemOp) -> bool {
        if !self.has_room() {
            return false;
        }
        self.entries.push_back(SbEntry {
            op,
            committed: false,
        });
        true
    }

    /// Marks the store `id` as committed (eligible to drain).
    pub fn mark_committed(&mut self, id: OpId) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.op.id == id) {
            e.committed = true;
        }
    }

    /// Pops the oldest committed store, if the head has committed
    /// (drain is in order).
    pub fn pop_committed(&mut self) -> Option<MemOp> {
        match self.entries.front() {
            Some(e) if e.committed => self.entries.pop_front().map(|e| e.op),
            _ => None,
        }
    }
}

/// One merge buffer entry: coalesced committed stores to a single line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MbEntry {
    /// The line all merged stores hit.
    pub line: LineAddr,
    /// A representative memory op (first store's identity and address).
    pub rep: MemOp,
    /// How many stores were merged into this entry.
    pub merged: u32,
}

/// The merge buffer (4 entries in Table II).
#[derive(Clone, Debug)]
pub struct MergeBuffer {
    entries: VecDeque<MbEntry>,
    capacity: usize,
    line_shift: u32,
    merged_stores: u64,
    allocations: u64,
}

impl MergeBuffer {
    /// Creates an empty merge buffer with `capacity` entries merging at
    /// cache-line granularity (`line_shift` = log2 of the line size).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, line_shift: u32) -> Self {
        assert!(capacity > 0, "merge buffer needs capacity");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            line_shift,
            merged_stores: 0,
            allocations: 0,
        }
    }

    fn line_of(&self, op: &MemOp) -> LineAddr {
        LineAddr::new(op.vaddr.raw() >> self.line_shift)
    }

    /// Inserts a committed store: merges into an existing same-line entry,
    /// else allocates. If allocation requires room, the oldest entry is
    /// evicted and returned — it must be written to the L1.
    pub fn insert(&mut self, op: MemOp) -> Option<MbEntry> {
        let line = self.line_of(&op);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.merged += 1;
            self.merged_stores += 1;
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        self.allocations += 1;
        self.entries.push_back(MbEntry {
            line,
            rep: op,
            merged: 1,
        });
        evicted
    }

    /// Checks whether `line` currently has an MB entry (lookup for loads).
    pub fn holds_line(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Drains one entry for end-of-run cleanup.
    pub fn pop(&mut self) -> Option<MbEntry> {
        self.entries.pop_front()
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores that were merged into existing entries (L1 writes avoided).
    pub fn merged_stores(&self) -> u64 {
        self.merged_stores
    }

    /// Entries allocated over the run.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::addr::VAddr;

    fn st(id: u64, addr: u64) -> MemOp {
        MemOp::store(OpId(id), VAddr::new(addr), 4)
    }

    #[test]
    fn sb_fifo_commit_drain() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.push(st(1, 0x100)));
        assert!(sb.push(st(2, 0x200)));
        assert!(!sb.push(st(3, 0x300)), "full SB rejects");
        assert!(sb.pop_committed().is_none(), "nothing committed yet");
        // Commit out of order: drain stays in order.
        sb.mark_committed(OpId(2));
        assert!(sb.pop_committed().is_none(), "head not committed");
        sb.mark_committed(OpId(1));
        assert_eq!(sb.pop_committed().unwrap().id, OpId(1));
        assert_eq!(sb.pop_committed().unwrap().id, OpId(2));
        assert!(sb.is_empty());
    }

    #[test]
    fn mb_merges_same_line() {
        let mut mb = MergeBuffer::new(4, 6);
        assert!(mb.insert(st(1, 0x100)).is_none());
        assert!(mb.insert(st(2, 0x104)).is_none()); // same 64B line
        assert!(mb.insert(st(3, 0x13c)).is_none()); // still same line
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.merged_stores(), 2);
        assert_eq!(mb.allocations(), 1);
    }

    #[test]
    fn mb_evicts_oldest_when_full() {
        let mut mb = MergeBuffer::new(2, 6);
        mb.insert(st(1, 0x000));
        mb.insert(st(2, 0x040));
        let ev = mb.insert(st(3, 0x080)).expect("full MB evicts");
        assert_eq!(ev.line, LineAddr::new(0));
        assert_eq!(mb.len(), 2);
        assert!(mb.holds_line(LineAddr::new(1)));
        assert!(mb.holds_line(LineAddr::new(2)));
        assert!(!mb.holds_line(LineAddr::new(0)));
    }

    #[test]
    fn mb_pop_drains_in_order() {
        let mut mb = MergeBuffer::new(4, 6);
        mb.insert(st(1, 0x000));
        mb.insert(st(2, 0x040));
        assert_eq!(mb.pop().unwrap().line, LineAddr::new(0));
        assert_eq!(mb.pop().unwrap().line, LineAddr::new(1));
        assert!(mb.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = StoreBuffer::new(0);
    }
}
