//! The translation front end shared by every interface: page table, TLB,
//! micro-TLB, and the bookkeeping the way tables need (slot indices and
//! eviction events).

use malec_mem::tlb::{MicroTlb, PageTable, Tlb, TlbEntry};
use malec_types::addr::{PPageId, VPageId};

/// Extra cycles a translation adds on top of the (pipelined) uTLB hit path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TranslationPath {
    /// uTLB hit: fully overlapped, no extra latency.
    MicroHit,
    /// uTLB miss, TLB hit: one extra cycle.
    TlbHit,
    /// Both missed: a page-table walk.
    Walk,
}

impl TranslationPath {
    /// Extra latency in cycles for this path.
    pub const fn extra_latency(self) -> u32 {
        match self {
            TranslationPath::MicroHit => 0,
            TranslationPath::TlbHit => 1,
            TranslationPath::Walk => 20,
        }
    }
}

/// Result of translating one virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    /// The physical page.
    pub ppage: PPageId,
    /// Which path the translation took (drives latency and energy).
    pub path: TranslationPath,
    /// uTLB slot now holding the translation (way tables mirror slots).
    pub utlb_slot: usize,
    /// TLB slot now holding the translation.
    pub tlb_slot: usize,
    /// uTLB entry evicted to make room (its uWT entry must sync to the WT).
    pub utlb_evicted: Option<(usize, TlbEntry)>,
    /// TLB entry evicted (its WT entry is lost; any uTLB copy dies too).
    pub tlb_evicted: Option<(usize, TlbEntry)>,
}

/// Page table + TLB + uTLB with the synchronization rules of Sec. V.
#[derive(Clone, Debug)]
pub struct Mmu {
    page_table: PageTable,
    utlb: MicroTlb,
    tlb: Tlb,
}

impl Mmu {
    /// Creates the MMU with `utlb_entries`/`tlb_entries` slots and a
    /// deterministic TLB replacement seed.
    pub fn new(utlb_entries: usize, tlb_entries: usize, seed: u64) -> Self {
        Self {
            page_table: PageTable::default(),
            utlb: MicroTlb::new(utlb_entries),
            tlb: Tlb::new(tlb_entries, seed),
        }
    }

    /// Translates `vpage`, updating uTLB/TLB state and reporting every event
    /// the way tables need.
    pub fn translate(&mut self, vpage: VPageId) -> Translation {
        if let Some((slot, entry)) = self.utlb.lookup(vpage) {
            let tlb_slot = self
                .tlb
                .lookup_by_ppage(entry.ppage)
                .map(|(s, _)| s)
                .unwrap_or(usize::MAX);
            return Translation {
                ppage: entry.ppage,
                path: TranslationPath::MicroHit,
                utlb_slot: slot,
                tlb_slot,
                utlb_evicted: None,
                tlb_evicted: None,
            };
        }

        // uTLB miss: consult the TLB.
        if let Some((tlb_slot, entry)) = self.tlb.lookup(vpage) {
            let ev = self.utlb.insert(vpage, entry.ppage);
            return Translation {
                ppage: entry.ppage,
                path: TranslationPath::TlbHit,
                utlb_slot: ev.slot,
                tlb_slot,
                utlb_evicted: ev.evicted.map(|e| (ev.slot, e)),
                tlb_evicted: None,
            };
        }

        // Page-table walk.
        let ppage = self.page_table.translate(vpage);
        let tlb_ev = self.tlb.insert(vpage, ppage);
        // A TLB eviction kills any uTLB copy of the evicted page.
        let mut tlb_evicted = None;
        if let Some(evicted) = tlb_ev.evicted {
            if let Some(slot) = self.utlb.slot_of(evicted.vpage) {
                self.utlb.invalidate_slot(slot);
            }
            tlb_evicted = Some((tlb_ev.slot, evicted));
        }
        let u_ev = self.utlb.insert(vpage, ppage);
        Translation {
            ppage,
            path: TranslationPath::Walk,
            utlb_slot: u_ev.slot,
            tlb_slot: tlb_ev.slot,
            utlb_evicted: u_ev.evicted.map(|e| (u_ev.slot, e)),
            tlb_evicted,
        }
    }

    /// Reverse lookup by physical page in the uTLB (for way-table validity
    /// maintenance on line fills/evictions).
    pub fn utlb_slot_of_ppage(&self, ppage: PPageId) -> Option<usize> {
        self.utlb.lookup_by_ppage(ppage).map(|(s, _)| s)
    }

    /// Reverse lookup by physical page in the TLB.
    pub fn tlb_slot_of_ppage(&self, ppage: PPageId) -> Option<usize> {
        self.tlb.lookup_by_ppage(ppage).map(|(s, _)| s)
    }

    /// TLB slot currently holding `vpage` (no statistics side effects).
    pub fn tlb_slot_of_vpage(&self, vpage: VPageId) -> Option<usize> {
        self.tlb
            .lookup_by_ppage(self.peek_translate(vpage)?)
            .map(|(s, _)| s)
    }

    /// Physical page for `vpage` if it is currently cached in the TLB
    /// (no state change).
    fn peek_translate(&self, vpage: VPageId) -> Option<PPageId> {
        (0..self.tlb.capacity())
            .filter_map(|s| self.tlb.entry(s))
            .find(|e| e.vpage == vpage)
            .map(|e| e.ppage)
    }

    /// uTLB hit/miss statistics.
    pub fn utlb_stats(&self) -> (u64, u64) {
        (self.utlb.hits(), self.utlb.misses())
    }

    /// TLB hit/miss statistics.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(4, 16, 7)
    }

    #[test]
    fn first_touch_walks_then_hits() {
        let mut m = mmu();
        let v = VPageId::new(0x100);
        let t1 = m.translate(v);
        assert_eq!(t1.path, TranslationPath::Walk);
        let t2 = m.translate(v);
        assert_eq!(t2.path, TranslationPath::MicroHit);
        assert_eq!(t1.ppage, t2.ppage);
        assert_eq!(t1.utlb_slot, t2.utlb_slot);
    }

    #[test]
    fn utlb_eviction_reported_for_wt_sync() {
        let mut m = mmu();
        // Fill the 4-entry uTLB, then add a fifth page.
        for v in 0..5u64 {
            m.translate(VPageId::new(v));
        }
        // The fifth translation must have evicted one of the first four.
        // (All were walks; the last one's utlb_evicted should be set.)
        let t = m.translate(VPageId::new(9));
        assert!(
            t.utlb_evicted.is_some(),
            "full uTLB must report an eviction for uWT sync"
        );
    }

    #[test]
    fn tlb_hit_after_utlb_eviction() {
        let mut m = mmu();
        let v0 = VPageId::new(50);
        m.translate(v0);
        // Push v0 out of the 4-entry uTLB (but it stays in the 16-entry TLB).
        for v in 60..65u64 {
            m.translate(VPageId::new(v));
        }
        let t = m.translate(v0);
        assert_eq!(t.path, TranslationPath::TlbHit);
    }

    #[test]
    fn tlb_eviction_invalidates_utlb_copy() {
        let mut m = Mmu::new(4, 4, 3);
        // Fill the 4-entry TLB.
        for v in 0..4u64 {
            m.translate(VPageId::new(v));
        }
        // Insert a fifth page: some page is evicted from the TLB.
        let t = m.translate(VPageId::new(4));
        let (_, evicted) = t.tlb_evicted.expect("TLB eviction expected");
        // The evicted page must no longer hit the uTLB either.
        let again = m.translate(evicted.vpage);
        assert_ne!(again.path, TranslationPath::MicroHit);
    }

    #[test]
    fn reverse_lookups_find_pages() {
        let mut m = mmu();
        let v = VPageId::new(0x77);
        let t = m.translate(v);
        assert_eq!(m.utlb_slot_of_ppage(t.ppage), Some(t.utlb_slot));
        assert_eq!(m.tlb_slot_of_ppage(t.ppage), Some(t.tlb_slot));
        assert_eq!(m.utlb_slot_of_ppage(PPageId::new(0xffff_1234)), None);
    }

    #[test]
    fn translation_paths_have_increasing_latency() {
        assert!(
            TranslationPath::MicroHit.extra_latency() < TranslationPath::TlbHit.extra_latency()
        );
        assert!(TranslationPath::TlbHit.extra_latency() < TranslationPath::Walk.extra_latency());
    }
}
