//! Page-Based Way Determination: way tables coupled to the TLBs.
//!
//! A way-table entry holds combined validity + way information for every
//! cache line of one page in **2 bits per line** (Sec. V, Fig. 3): for the
//! line group `g = (line_index / banks) mod ways`, way `g` is declared
//! non-representable ("way unknown"), leaving exactly three encodable ways —
//! so {unknown, wayA, wayB, wayC} fits in 2 bits. This saves ⅓ of area and
//! leakage over a naive 1-valid-bit + 2-way-bit format (128 vs 192 bits for
//! 64 lines per page).
//!
//! The [`MicroWayTable`] mirrors the uTLB slot-for-slot, the [`WayTable`]
//! mirrors the TLB. A TLB hit returns the WT entry alongside the
//! translation, so one lookup services *all* references to the page.

use malec_types::addr::WayId;

const UNKNOWN: u8 = 0;

/// Combined validity/way slots for all lines of one page.
///
/// # Example
///
/// ```
/// use malec_core::waytable::WaySlots;
/// use malec_types::addr::WayId;
///
/// let mut slots = WaySlots::new(64, 4, 4);
/// assert_eq!(slots.get(10), None);
/// assert!(slots.set(10, WayId(0)));
/// assert_eq!(slots.get(10), Some(WayId(0)));
/// // Line 10's group is (10 / 4) % 4 = 2: way 2 is not representable.
/// assert!(!slots.set(10, WayId(2)));
/// assert_eq!(slots.get(10), None, "unrepresentable way reads as unknown");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WaySlots {
    codes: Box<[u8]>,
    banks: u8,
    ways: u8,
}

impl WaySlots {
    /// Creates an all-unknown entry for a page of `lines` cache lines in a
    /// cache with `banks` banks and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `ways < 2` (2-bit encoding needs
    /// at least one representable way).
    pub fn new(lines: u32, banks: u32, ways: u32) -> Self {
        assert!(
            lines > 0 && banks > 0 && ways >= 2,
            "degenerate way-slot geometry"
        );
        Self {
            codes: vec![UNKNOWN; lines as usize].into_boxed_slice(),
            banks: banks as u8,
            ways: ways as u8,
        }
    }

    /// The way that is *not* representable for `line_in_page` (always read
    /// as unknown): `(line / banks) mod ways`.
    pub fn excluded_way(&self, line_in_page: u8) -> WayId {
        WayId((line_in_page / self.banks) % self.ways)
    }

    /// Way information for a line: `Some(way)` means valid-and-known (the
    /// access may bypass the tag arrays), `None` means unknown.
    pub fn get(&self, line_in_page: u8) -> Option<WayId> {
        let code = self.codes[line_in_page as usize];
        if code == UNKNOWN {
            return None;
        }
        let excluded = self.excluded_way(line_in_page).0;
        // Codes 1..ways map to the representable ways in increasing order.
        let idx = code - 1;
        let way = if idx >= excluded { idx + 1 } else { idx };
        Some(WayId(way))
    }

    /// Records that `line_in_page` resides in `way`. Returns `false` when
    /// the way equals the excluded way and therefore stays unknown.
    pub fn set(&mut self, line_in_page: u8, way: WayId) -> bool {
        let excluded = self.excluded_way(line_in_page).0;
        if way.0 == excluded || way.0 >= self.ways {
            self.codes[line_in_page as usize] = UNKNOWN;
            return false;
        }
        let idx = if way.0 > excluded { way.0 - 1 } else { way.0 };
        self.codes[line_in_page as usize] = idx + 1;
        true
    }

    /// Invalidates the line (eviction).
    pub fn clear(&mut self, line_in_page: u8) {
        self.codes[line_in_page as usize] = UNKNOWN;
    }

    /// Invalidates every line (new page allocation).
    pub fn clear_all(&mut self) {
        self.codes.fill(UNKNOWN);
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u32 {
        self.codes.len() as u32
    }

    /// Number of valid (known-way) lines.
    pub fn known_lines(&self) -> u32 {
        self.codes.iter().filter(|&&c| c != UNKNOWN).count() as u32
    }

    /// Copies the contents of `other` into this entry.
    pub fn copy_from(&mut self, other: &WaySlots) {
        self.codes.copy_from_slice(&other.codes);
    }
}

/// The micro way table: one [`WaySlots`] entry per uTLB slot.
#[derive(Clone, Debug)]
pub struct MicroWayTable {
    entries: Vec<WaySlots>,
}

impl MicroWayTable {
    /// Creates an all-unknown table with one entry per uTLB slot.
    pub fn new(slots: usize, lines: u32, banks: u32, ways: u32) -> Self {
        Self {
            entries: (0..slots)
                .map(|_| WaySlots::new(lines, banks, ways))
                .collect(),
        }
    }

    /// Entry for a uTLB slot.
    pub fn entry(&self, slot: usize) -> &WaySlots {
        &self.entries[slot]
    }

    /// Mutable entry for a uTLB slot.
    pub fn entry_mut(&mut self, slot: usize) -> &mut WaySlots {
        &mut self.entries[slot]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The way table proper: one [`WaySlots`] entry per TLB slot.
#[derive(Clone, Debug)]
pub struct WayTable {
    entries: Vec<WaySlots>,
}

impl WayTable {
    /// Creates an all-unknown table with one entry per TLB slot.
    pub fn new(slots: usize, lines: u32, banks: u32, ways: u32) -> Self {
        Self {
            entries: (0..slots)
                .map(|_| WaySlots::new(lines, banks, ways))
                .collect(),
        }
    }

    /// Entry for a TLB slot.
    pub fn entry(&self, slot: usize) -> &WaySlots {
        &self.entries[slot]
    }

    /// Mutable entry for a TLB slot.
    pub fn entry_mut(&mut self, slot: usize) -> &mut WaySlots {
        &mut self.entries[slot]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn excluded_way_rotates_by_line_group() {
        let s = WaySlots::new(64, 4, 4);
        // Lines 0..3 exclude way 0, lines 4..7 exclude way 1 (Sec. V).
        for l in 0..4u8 {
            assert_eq!(s.excluded_way(l), WayId(0));
        }
        for l in 4..8u8 {
            assert_eq!(s.excluded_way(l), WayId(1));
        }
        for l in 8..12u8 {
            assert_eq!(s.excluded_way(l), WayId(2));
        }
        for l in 12..16u8 {
            assert_eq!(s.excluded_way(l), WayId(3));
        }
        // Wraps: lines 16..19 exclude way 0 again.
        assert_eq!(s.excluded_way(16), WayId(0));
    }

    #[test]
    fn set_get_roundtrip_for_representable_ways() {
        let mut s = WaySlots::new(64, 4, 4);
        for l in 0..64u8 {
            let excluded = s.excluded_way(l).0;
            for w in 0..4u8 {
                if w == excluded {
                    continue;
                }
                assert!(s.set(l, WayId(w)));
                assert_eq!(s.get(l), Some(WayId(w)), "line {l} way {w}");
            }
        }
    }

    #[test]
    fn excluded_way_reads_unknown() {
        let mut s = WaySlots::new(64, 4, 4);
        assert!(s.set(5, WayId(0)));
        // Line 5's excluded way is 1: setting it degrades to unknown.
        assert!(!s.set(5, WayId(1)));
        assert_eq!(s.get(5), None);
    }

    #[test]
    fn clear_invalidates() {
        let mut s = WaySlots::new(64, 4, 4);
        s.set(7, WayId(3));
        assert!(s.get(7).is_some());
        s.clear(7);
        assert_eq!(s.get(7), None);
        s.set(7, WayId(3));
        s.set(9, WayId(3));
        s.clear_all();
        assert_eq!(s.known_lines(), 0);
    }

    #[test]
    fn copy_from_mirrors_entries() {
        let mut a = WaySlots::new(64, 4, 4);
        let mut b = WaySlots::new(64, 4, 4);
        a.set(3, WayId(2));
        a.set(40, WayId(1));
        b.copy_from(&a);
        assert_eq!(b.get(3), Some(WayId(2)));
        assert_eq!(b.get(40), Some(WayId(1)));
        assert_eq!(b.known_lines(), 2);
    }

    #[test]
    fn tables_have_independent_entries() {
        let mut wt = WayTable::new(4, 64, 4, 4);
        wt.entry_mut(0).set(1, WayId(2));
        assert_eq!(wt.entry(0).get(1), Some(WayId(2)));
        assert_eq!(wt.entry(1).get(1), None);
        let uwt = MicroWayTable::new(2, 64, 4, 4);
        assert_eq!(uwt.entry(0).known_lines(), 0);
        assert_eq!(uwt.len(), 2);
        assert_eq!(wt.len(), 4);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_geometry_panics() {
        let _ = WaySlots::new(0, 4, 4);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_representable(l in 0u8..64, w in 0u8..4) {
            let mut s = WaySlots::new(64, 4, 4);
            let representable = s.set(l, WayId(w));
            if representable {
                prop_assert_eq!(s.get(l), Some(WayId(w)));
            } else {
                prop_assert_eq!(s.get(l), None);
                prop_assert_eq!(s.excluded_way(l), WayId(w));
            }
        }

        #[test]
        fn prop_get_never_returns_excluded(l in 0u8..64, code_ops in proptest::collection::vec((0u8..64, 0u8..4), 0..32)) {
            let mut s = WaySlots::new(64, 4, 4);
            for (line, way) in code_ops {
                s.set(line, WayId(way));
            }
            if let Some(w) = s.get(l) {
                prop_assert_ne!(w, s.excluded_way(l));
            }
        }
    }
}
