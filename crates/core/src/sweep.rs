//! Cache-parameter sweeps — the Sec. VI-D scaling claims as an API.
//!
//! The paper states that Page-Based Memory Access Grouping and Page-Based
//! Way Determination "scale well with most cache parameters, e.g. capacity,
//! line size, associativity, number of banks, and available address space".
//! [`ParameterSweep`] builds valid [`SimConfig`] variants along those axes
//! so the claim can be measured rather than asserted.

use malec_types::config::SimConfig;
use malec_types::geometry::CacheGeometry;

use crate::metrics::RunSummary;
use crate::parallel::{parallel_map, parallel_map_with, workers_for};
use crate::sim::Simulator;
use crate::source::ScenarioSource;
use crate::stats::{replicate_seed, ReplicateStats, Replication};
use malec_trace::profile::BenchmarkProfile;

/// One point of a parameter sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Human-readable description of the varied parameter (e.g. `banks=8`).
    pub label: String,
    /// The configuration at this point.
    pub config: SimConfig,
}

/// Builder for families of MALEC configurations along one geometry axis.
///
/// # Example
///
/// ```
/// use malec_core::sweep::ParameterSweep;
///
/// let points = ParameterSweep::banks(&[1, 2, 4, 8]);
/// assert_eq!(points.len(), 4);
/// assert!(points.iter().all(|p| p.config.validate().is_ok()));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ParameterSweep;

impl ParameterSweep {
    /// MALEC configurations with varying L1 bank counts (same capacity).
    pub fn banks(banks: &[u32]) -> Vec<SweepPoint> {
        banks
            .iter()
            .filter_map(|&b| {
                let l1 = CacheGeometry::new(32 * 1024, 4, b, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("banks={b}"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying L1 capacities (same organization).
    pub fn capacities(kib: &[u64]) -> Vec<SweepPoint> {
        kib.iter()
            .filter_map(|&k| {
                let l1 = CacheGeometry::new(k * 1024, 4, 4, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("L1={k}KiB"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying associativity.
    pub fn ways(ways: &[u32]) -> Vec<SweepPoint> {
        ways.iter()
            .filter_map(|&w| {
                let l1 = CacheGeometry::new(32 * 1024, w, 4, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("ways={w}"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying result-bus counts (the paper:
    /// "MALEC's performance is primarily limited by the number of memory
    /// references issued per cycle and the number of available result
    /// busses").
    pub fn result_buses(buses: &[u8]) -> Vec<SweepPoint> {
        buses
            .iter()
            .filter_map(|&r| {
                let mut config = SimConfig::malec();
                config.result_buses = r;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("result_buses={r}"),
                    config,
                })
            })
            .collect()
    }

    /// Runs every point of a sweep on one benchmark, one point per worker
    /// (each point is an independent seeded simulation; the output order
    /// matches `points` no matter how the work was scheduled).
    pub fn run(
        points: &[SweepPoint],
        profile: &BenchmarkProfile,
        insts: u64,
        seed: u64,
    ) -> Vec<(String, RunSummary)> {
        Self::run_source(
            points,
            &ScenarioSource::Profile(profile.clone()),
            insts,
            seed,
        )
    }

    /// [`ParameterSweep::run`] over any workload source — a profile, a
    /// composed scenario, or a replayed `.mtr` trace. Replay sources are
    /// re-opened per point, so the fan-out stays embarrassingly parallel.
    ///
    /// # Panics
    ///
    /// Panics if a replay source's file cannot be read — a sweep over a
    /// missing trace is a harness bug, not a recoverable condition.
    pub fn run_source(
        points: &[SweepPoint],
        source: &ScenarioSource,
        insts: u64,
        seed: u64,
    ) -> Vec<(String, RunSummary)> {
        let points: Vec<&SweepPoint> = points.iter().collect();
        parallel_map(points, |p| {
            let summary = Simulator::new(p.config.clone())
                .run_source(source, insts, seed)
                .unwrap_or_else(|e| panic!("{}: workload source failed: {e}", p.label));
            (p.label.clone(), summary)
        })
    }

    /// [`ParameterSweep::run_source`] with multi-seed replication: every
    /// point runs under `rep.seeds` derived seeds (`replicate_seed(seed,
    /// i)`; replicate 0 is the legacy single-seed path, bit for bit) and
    /// reports the per-metric distribution. With a `ci_target`, a point
    /// stops spawning replicates once the target metric's relative 95 % CI
    /// half-width falls below the target (never before `min_seeds`).
    ///
    /// Replicates fan out across points *and* replicate indices in rounds;
    /// the early-stopping decision is a pure function of each point's
    /// ordered replicate prefix, so the outcome is bit-identical at any
    /// worker count (`jobs` caps the fan-out like `--jobs`).
    ///
    /// # Panics
    ///
    /// Panics if a replay source's file cannot be read, as in
    /// [`ParameterSweep::run_source`].
    pub fn run_source_replicated(
        points: &[SweepPoint],
        source: &ScenarioSource,
        insts: u64,
        seed: u64,
        rep: &Replication,
        jobs: Option<usize>,
    ) -> Vec<ReplicatedPoint> {
        let replicates = replicate_rounds(
            points.len(),
            rep,
            jobs,
            |p, r| {
                Ok::<_, std::convert::Infallible>(
                    Simulator::new(points[p].config.clone())
                        .run_source(source, insts, replicate_seed(seed, r))
                        .unwrap_or_else(|e| {
                            panic!("{}: workload source failed: {e}", points[p].label)
                        }),
                )
            },
            |s| s,
        )
        .unwrap_or_else(|e| match e {});
        points
            .iter()
            .zip(replicates)
            .map(|(p, reps)| {
                let stats = ReplicateStats::from_replicates(&reps, rep.seeds);
                ReplicatedPoint {
                    label: p.label.clone(),
                    replicates: reps,
                    stats,
                }
            })
            .collect()
    }
}

/// The shared round-based replicate driver behind
/// [`ParameterSweep::run_source_replicated`] and the `malec-cli run`
/// pipeline: runs `run(point, replicate)` over `points` points. Round 1
/// launches every point's mandatory replicates (`rep.initial_count()`);
/// each later round adds **one** replicate to every not-yet-converged
/// point, so the final per-point count is the smallest ordered prefix
/// satisfying the policy — a pure function of the results, bit-identical
/// at any `jobs` cap. `summary` projects a produced value onto the
/// [`RunSummary`] the convergence check reads (identity for plain sweeps;
/// drivers that carry extra per-replicate payload project it away).
///
/// # Errors
///
/// Returns the first `run` error in unit order, once its round completes.
pub fn replicate_rounds<T, E, R, S>(
    points: usize,
    rep: &Replication,
    jobs: Option<usize>,
    run: R,
    summary: S,
) -> Result<Vec<Vec<T>>, E>
where
    T: Send,
    E: Send,
    R: Fn(usize, u32) -> Result<T, E> + Sync,
    S: Fn(&T) -> &RunSummary,
{
    replicate_rounds_by(points, rep.initial_count(), jobs, run, |p, all| {
        rep.converged(all[p].iter().map(&summary))
    })
}

/// The fully general round driver behind [`replicate_rounds`] and the
/// paired comparison driver (`malec_core::compare::paired_rounds`):
/// `converged(point, all_replicates)` sees **every** point's ordered
/// replicate prefix, so a stopping rule may couple points (the paired-delta
/// criterion stops a baseline/candidate pair jointly). The rule must stay a
/// pure function of those prefixes — that is what makes serial and parallel
/// runs stop at identical counts.
///
/// # Errors
///
/// Returns the first `run` error in unit order, once its round completes.
pub fn replicate_rounds_by<T, E, R, C>(
    points: usize,
    initial: u32,
    jobs: Option<usize>,
    run: R,
    converged: C,
) -> Result<Vec<Vec<T>>, E>
where
    T: Send,
    E: Send,
    R: Fn(usize, u32) -> Result<T, E> + Sync,
    C: Fn(usize, &[Vec<T>]) -> bool,
{
    let mut replicates: Vec<Vec<T>> = (0..points).map(|_| Vec::new()).collect();
    let mut pending: Vec<(usize, u32)> = (0..points)
        .flat_map(|p| (0..initial).map(move |r| (p, r)))
        .collect();
    while !pending.is_empty() {
        let workers = workers_for(pending.len(), jobs);
        let round = parallel_map_with(pending.clone(), |&(p, r)| run(p, r), workers);
        for (&(p, _), result) in pending.iter().zip(round) {
            replicates[p].push(result?);
        }
        pending = (0..points)
            .filter(|&p| !converged(p, &replicates))
            .map(|p| (p, replicates[p].len() as u32))
            .collect();
    }
    Ok(replicates)
}

/// One sweep point's replicated results: every replicate summary in
/// replicate order (index 0 is the legacy single-seed run) plus the
/// aggregated per-metric statistics.
#[derive(Clone, Debug)]
pub struct ReplicatedPoint {
    /// The point's label.
    pub label: String,
    /// Replicate summaries in replicate order.
    pub replicates: Vec<RunSummary>,
    /// Per-metric mean / 95 % CI / min / max over the replicates.
    pub stats: ReplicateStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::all_benchmarks;

    fn gzip() -> BenchmarkProfile {
        all_benchmarks()
            .into_iter()
            .find(|b| b.name == "gzip")
            .expect("gzip exists")
    }

    #[test]
    fn invalid_points_are_dropped() {
        // 3 banks is not a power of two; the point silently disappears.
        let points = ParameterSweep::banks(&[2, 3, 4]);
        assert_eq!(points.len(), 2);
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["banks=2", "banks=4"]);
    }

    #[test]
    fn more_banks_never_hurt_grouped_throughput() {
        let points = ParameterSweep::banks(&[1, 4]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        let one_bank = results[0].1.core.cycles;
        let four_banks = results[1].1.core.cycles;
        assert!(
            four_banks <= one_bank,
            "banking enables parallel servicing: {four_banks} vs {one_bank}"
        );
    }

    #[test]
    fn bigger_caches_miss_less() {
        let points = ParameterSweep::capacities(&[8, 64]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        assert!(
            results[1].1.l1_miss_rate <= results[0].1.l1_miss_rate,
            "64KiB should not miss more than 8KiB"
        );
    }

    #[test]
    fn way_determination_survives_associativity_changes() {
        // The 2-bit encoding generalizes to 8 ways (3 bits would be naive;
        // we keep 2 bits and one excluded way — coverage still works).
        let points = ParameterSweep::ways(&[2, 4, 8]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        for (label, run) in &results {
            assert!(
                run.interface.coverage() > 0.5,
                "{label}: coverage collapsed to {}",
                run.interface.coverage()
            );
        }
    }

    #[test]
    fn replicated_sweep_is_bit_identical_serial_vs_parallel() {
        let points = ParameterSweep::banks(&[2, 4]);
        let source = ScenarioSource::Profile(gzip());
        let rep = Replication::fixed(4);
        let serial =
            ParameterSweep::run_source_replicated(&points, &source, 5_000, 3, &rep, Some(1));
        let parallel =
            ParameterSweep::run_source_replicated(&points, &source, 5_000, 3, &rep, Some(4));
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.replicates.len(), 4);
            for (a, b) in s.replicates.iter().zip(&p.replicates) {
                assert_eq!(a.core, b.core, "{}: fan-out leaked into results", s.label);
                assert_eq!(a.counters, b.counters);
            }
            for ((an, a), (bn, b)) in s.stats.metrics.iter().zip(&p.stats.metrics) {
                assert_eq!(an, bn);
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{}/{an}", s.label);
            }
        }
    }

    #[test]
    fn replicate_zero_matches_the_single_seed_path() {
        let points = ParameterSweep::banks(&[4]);
        let source = ScenarioSource::Profile(gzip());
        let single = ParameterSweep::run_source(&points, &source, 5_000, 3);
        let replicated = ParameterSweep::run_source_replicated(
            &points,
            &source,
            5_000,
            3,
            &Replication::fixed(3),
            None,
        );
        assert_eq!(
            single[0].1.core, replicated[0].replicates[0].core,
            "replicate 0 is the legacy seed path, bit for bit"
        );
        // Later replicates really use different seeds (different streams).
        assert_ne!(
            replicated[0].replicates[0].core.cycles,
            replicated[0].replicates[1].core.cycles
        );
    }

    #[test]
    fn ci_target_stops_early_on_a_generous_target() {
        let points = ParameterSweep::banks(&[4]);
        let source = ScenarioSource::Profile(gzip());
        let rep = Replication {
            seeds: 16,
            min_seeds: 3,
            ci_target: Some(0.5), // 50 % relative half-width: trivially met
            metric: crate::stats::CiMetric::Ipc,
        };
        let out = ParameterSweep::run_source_replicated(&points, &source, 5_000, 3, &rep, None);
        assert!(
            out[0].replicates.len() < 16,
            "a generous target must stop before the seed cap"
        );
        assert!(out[0].replicates.len() >= 3, "never before min_seeds");
        assert_eq!(
            out[0].stats.saved,
            16 - out[0].replicates.len() as u32,
            "saved replicates are priced against the cap"
        );
    }

    #[test]
    fn result_buses_bound_malec_throughput() {
        let points = ParameterSweep::result_buses(&[1, 4]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        let narrow = results[0].1.core.cycles;
        let wide = results[1].1.core.cycles;
        assert!(
            wide < narrow,
            "one result bus must throttle MALEC: {wide} vs {narrow}"
        );
    }
}
