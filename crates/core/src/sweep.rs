//! Cache-parameter sweeps — the Sec. VI-D scaling claims as an API.
//!
//! The paper states that Page-Based Memory Access Grouping and Page-Based
//! Way Determination "scale well with most cache parameters, e.g. capacity,
//! line size, associativity, number of banks, and available address space".
//! [`ParameterSweep`] builds valid [`SimConfig`] variants along those axes
//! so the claim can be measured rather than asserted.

use malec_types::config::SimConfig;
use malec_types::geometry::CacheGeometry;

use crate::metrics::RunSummary;
use crate::parallel::parallel_map;
use crate::sim::Simulator;
use crate::source::ScenarioSource;
use malec_trace::profile::BenchmarkProfile;

/// One point of a parameter sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Human-readable description of the varied parameter (e.g. `banks=8`).
    pub label: String,
    /// The configuration at this point.
    pub config: SimConfig,
}

/// Builder for families of MALEC configurations along one geometry axis.
///
/// # Example
///
/// ```
/// use malec_core::sweep::ParameterSweep;
///
/// let points = ParameterSweep::banks(&[1, 2, 4, 8]);
/// assert_eq!(points.len(), 4);
/// assert!(points.iter().all(|p| p.config.validate().is_ok()));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ParameterSweep;

impl ParameterSweep {
    /// MALEC configurations with varying L1 bank counts (same capacity).
    pub fn banks(banks: &[u32]) -> Vec<SweepPoint> {
        banks
            .iter()
            .filter_map(|&b| {
                let l1 = CacheGeometry::new(32 * 1024, 4, b, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("banks={b}"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying L1 capacities (same organization).
    pub fn capacities(kib: &[u64]) -> Vec<SweepPoint> {
        kib.iter()
            .filter_map(|&k| {
                let l1 = CacheGeometry::new(k * 1024, 4, 4, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("L1={k}KiB"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying associativity.
    pub fn ways(ways: &[u32]) -> Vec<SweepPoint> {
        ways.iter()
            .filter_map(|&w| {
                let l1 = CacheGeometry::new(32 * 1024, w, 4, 64, 128).ok()?;
                let mut config = SimConfig::malec();
                config.l1 = l1;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("ways={w}"),
                    config,
                })
            })
            .collect()
    }

    /// MALEC configurations with varying result-bus counts (the paper:
    /// "MALEC's performance is primarily limited by the number of memory
    /// references issued per cycle and the number of available result
    /// busses").
    pub fn result_buses(buses: &[u8]) -> Vec<SweepPoint> {
        buses
            .iter()
            .filter_map(|&r| {
                let mut config = SimConfig::malec();
                config.result_buses = r;
                config.validate().ok()?;
                Some(SweepPoint {
                    label: format!("result_buses={r}"),
                    config,
                })
            })
            .collect()
    }

    /// Runs every point of a sweep on one benchmark, one point per worker
    /// (each point is an independent seeded simulation; the output order
    /// matches `points` no matter how the work was scheduled).
    pub fn run(
        points: &[SweepPoint],
        profile: &BenchmarkProfile,
        insts: u64,
        seed: u64,
    ) -> Vec<(String, RunSummary)> {
        Self::run_source(
            points,
            &ScenarioSource::Profile(profile.clone()),
            insts,
            seed,
        )
    }

    /// [`ParameterSweep::run`] over any workload source — a profile, a
    /// composed scenario, or a replayed `.mtr` trace. Replay sources are
    /// re-opened per point, so the fan-out stays embarrassingly parallel.
    ///
    /// # Panics
    ///
    /// Panics if a replay source's file cannot be read — a sweep over a
    /// missing trace is a harness bug, not a recoverable condition.
    pub fn run_source(
        points: &[SweepPoint],
        source: &ScenarioSource,
        insts: u64,
        seed: u64,
    ) -> Vec<(String, RunSummary)> {
        let points: Vec<&SweepPoint> = points.iter().collect();
        parallel_map(points, |p| {
            let summary = Simulator::new(p.config.clone())
                .run_source(source, insts, seed)
                .unwrap_or_else(|e| panic!("{}: workload source failed: {e}", p.label));
            (p.label.clone(), summary)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::all_benchmarks;

    fn gzip() -> BenchmarkProfile {
        all_benchmarks()
            .into_iter()
            .find(|b| b.name == "gzip")
            .expect("gzip exists")
    }

    #[test]
    fn invalid_points_are_dropped() {
        // 3 banks is not a power of two; the point silently disappears.
        let points = ParameterSweep::banks(&[2, 3, 4]);
        assert_eq!(points.len(), 2);
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["banks=2", "banks=4"]);
    }

    #[test]
    fn more_banks_never_hurt_grouped_throughput() {
        let points = ParameterSweep::banks(&[1, 4]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        let one_bank = results[0].1.core.cycles;
        let four_banks = results[1].1.core.cycles;
        assert!(
            four_banks <= one_bank,
            "banking enables parallel servicing: {four_banks} vs {one_bank}"
        );
    }

    #[test]
    fn bigger_caches_miss_less() {
        let points = ParameterSweep::capacities(&[8, 64]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        assert!(
            results[1].1.l1_miss_rate <= results[0].1.l1_miss_rate,
            "64KiB should not miss more than 8KiB"
        );
    }

    #[test]
    fn way_determination_survives_associativity_changes() {
        // The 2-bit encoding generalizes to 8 ways (3 bits would be naive;
        // we keep 2 bits and one excluded way — coverage still works).
        let points = ParameterSweep::ways(&[2, 4, 8]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        for (label, run) in &results {
            assert!(
                run.interface.coverage() > 0.5,
                "{label}: coverage collapsed to {}",
                run.interface.coverage()
            );
        }
    }

    #[test]
    fn result_buses_bound_malec_throughput() {
        let points = ParameterSweep::result_buses(&[1, 4]);
        let results = ParameterSweep::run(&points, &gzip(), 15_000, 3);
        let narrow = results[0].1.core.cycles;
        let wide = results[1].1.core.cycles;
        assert!(
            wide < narrow,
            "one result bus must throttle MALEC: {wide} vs {narrow}"
        );
    }
}
