//! MALEC — a Multiple Access Low Energy Cache interface, reproduced.
//!
//! This crate implements the paper's contribution and its comparison points
//! as three interchangeable implementations of
//! [`malec_cpu::L1DataInterface`]:
//!
//! * [`BaselineInterface`] in `Base1ldst` trim — one load *or* store per
//!   cycle, fully single-ported (the energy-oriented baseline);
//! * [`BaselineInterface`] in `Base2ld1st` trim — two loads + one store per
//!   cycle via physical multi-porting (the performance-oriented baseline);
//! * [`MalecInterface`] — Page-Based Memory Access Grouping
//!   ([`InputBuffer`], [`ArbitrationUnit`]-style bank/merge selection) with
//!   optional Page-Based Way Determination ([`WayTable`]/[`MicroWayTable`])
//!   or a [`Wdu`] substitute.
//!
//! [`sim::Simulator`] glues a configuration, a benchmark profile,
//! the out-of-order core, the memory hierarchy and the energy model into one
//! reproducible run; [`report`] renders the paper's tables.
//!
//! # Quickstart
//!
//! ```
//! use malec_core::sim::Simulator;
//! use malec_trace::all_benchmarks;
//! use malec_types::SimConfig;
//!
//! let profile = &all_benchmarks()[0]; // gzip
//! let summary = Simulator::new(SimConfig::malec()).run(profile, 20_000, 1);
//! assert!(summary.core.ipc() > 0.0);
//! assert!(summary.energy.dynamic > 0.0);
//! ```
//!
//! [`BaselineInterface`]: baseline::BaselineInterface
//! [`MalecInterface`]: malec::MalecInterface
//! [`InputBuffer`]: input_buffer::InputBuffer
//! [`WayTable`]: waytable::WayTable
//! [`MicroWayTable`]: waytable::MicroWayTable
//! [`Wdu`]: wdu::Wdu
//! [`ArbitrationUnit`]: malec::MalecInterface

pub mod baseline;
pub mod compare;
pub mod digest;
pub mod input_buffer;
pub mod malec;
pub mod metrics;
pub mod mmu;
pub mod parallel;
pub mod pending;
pub mod report;
pub mod sbmb;
pub mod segmented_wt;
pub mod sim;
pub mod source;
pub mod stats;
pub mod sweep;
pub mod waytable;
pub mod wdu;

pub use baseline::BaselineInterface;
pub use compare::{Alpha, CompareStats, DeltaSummary, PairedSample, Verdict};
pub use digest::{digest, read_summary, summary_to_bytes, write_summary};
pub use malec::MalecInterface;
pub use metrics::{InterfaceStats, RunSummary};
pub use sim::Simulator;
pub use source::ScenarioSource;
pub use stats::{CiMetric, MetricSummary, ReplicateStats, Replication, Welford};
