//! Paired-seed comparative statistics: MALEC-vs-baseline **deltas** with
//! tight confidence intervals.
//!
//! The paper's headline is a comparison, not two marginals: MALEC against a
//! baseline cache interface on IPC and energy per access. Because every
//! replicate seed is shared across interfaces (replicate `i` of both sides
//! runs `replicate_seed(seed, i)` over the *same* generated instruction
//! stream), the per-seed difference cancels seed noise that both marginal
//! intervals must price in full. [`PairedSample`] accumulates those
//! differences through the same Welford core the marginal statistics use,
//! and prices the delta with a paired Student-t interval:
//!
//! ```text
//! hw_paired      = t_{1-α/2, n-1} · s_d / √n          (s_d over the deltas)
//! hw_independent = t_{1-α/2, n-1} · √((s_a² + s_b²)/n)
//! ```
//!
//! Since `s_d² = s_a² + s_b² − 2·cov(a, b)`, any positive seed correlation
//! makes the paired interval strictly narrower — on shared-seed simulations
//! the correlation is strong, so deltas that marginal CIs leave drowned in
//! overlap become certifiable wins or losses.
//!
//! [`CompareStats::from_pairs`] turns two replicate vectors into one
//! [`DeltaSummary`] per reported metric — delta mean ± CI, the relative
//! improvement over the baseline mean, and a [`Verdict`] at a configurable
//! [`Alpha`] — and [`compare_digest`] folds the whole block into one
//! FNV-1a value for golden regression checks. [`paired_converged`] is the
//! paired analogue of [`Replication::converged`]: a pure function of the
//! ordered pair prefix, so CI-driven early stopping lands on identical
//! replicate counts in serial, `--jobs N`, and `malec-serve` drivers
//! ([`paired_rounds`] is the local driver; the serve scheduler grows the
//! two cell groups jointly through the same predicate).

use crate::metrics::RunSummary;
use crate::stats::{
    higher_is_better, reported_extractors, t95, Replication, StatError, Welford, REPORTED_METRICS,
};
use crate::sweep::replicate_rounds_by;

/// Two-sided Student-t 95 % quantiles (`t_{0.95, df}`) for 1–30 degrees of
/// freedom — the `alpha = 0.10` verdict level.
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// Two-sided Student-t 99.5 % quantiles (`t_{0.995, df}`) for 1–30 degrees
/// of freedom — the `alpha = 0.01` verdict level.
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// The significance level a comparison verdict is issued at. Only the
/// three standard table levels are supported — the t-quantiles are exact
/// table values (through df = 30, then the same conservative step-downs as
/// [`t95`]), not an approximation that would wobble across platforms.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Alpha {
    /// 90 % confidence (`alpha = 0.10`).
    Ten,
    /// 95 % confidence (`alpha = 0.05`), the default.
    #[default]
    Five,
    /// 99 % confidence (`alpha = 0.01`).
    One,
}

impl Alpha {
    /// The numeric level (0.10 / 0.05 / 0.01).
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            Alpha::Ten => 0.10,
            Alpha::Five => 0.05,
            Alpha::One => 0.01,
        }
    }

    /// Parses a spec-level numeric alpha; only the three table levels are
    /// accepted (with float-literal slack).
    #[must_use]
    pub fn from_value(v: f64) -> Option<Self> {
        [Alpha::Ten, Alpha::Five, Alpha::One]
            .into_iter()
            .find(|a| (a.value() - v).abs() < 1e-9)
    }

    /// The two-sided `t_{1-alpha/2, df}` quantile: exact table values
    /// through df = 30, then the same conservative bracket step-downs as
    /// [`t95`] (each bracket carries its smallest-df quantile, so the
    /// interval never understates uncertainty).
    #[must_use]
    pub fn t(self, df: u64) -> f64 {
        match self {
            Alpha::Five => t95(df),
            Alpha::Ten => match df {
                0 => f64::INFINITY,
                1..=30 => T90[(df - 1) as usize],
                31..=40 => 1.697,
                41..=60 => 1.684,
                61..=120 => 1.671,
                _ => 1.658,
            },
            Alpha::One => match df {
                0 => f64::INFINITY,
                1..=30 => T99[(df - 1) as usize],
                31..=40 => 2.750,
                41..=60 => 2.704,
                61..=120 => 2.660,
                _ => 2.617,
            },
        }
    }
}

/// The outcome of a significance test on one metric's delta, oriented by
/// the metric's good direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The candidate is significantly better than the baseline.
    Win,
    /// The candidate is significantly worse than the baseline.
    Loss,
    /// The interval on the delta includes zero — no certified difference.
    Tie,
}

impl Verdict {
    /// The report-language name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Win => "win",
            Verdict::Loss => "loss",
            Verdict::Tie => "tie",
        }
    }

    /// The verdict with the two sides swapped (wins become losses).
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Verdict::Win => Verdict::Loss,
            Verdict::Loss => Verdict::Win,
            Verdict::Tie => Verdict::Tie,
        }
    }
}

/// Streaming paired-sample accumulator over one metric: candidate values
/// `a`, baseline values `b`, and their per-seed deltas `a − b`, each
/// through its own [`Welford`] core. One `push` per shared replicate seed,
/// in replicate order.
#[derive(Clone, Copy, Debug, Default)]
pub struct PairedSample {
    a: Welford,
    b: Welford,
    d: Welford,
}

impl PairedSample {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one shared-seed pair (candidate value, baseline value).
    pub fn push(&mut self, candidate: f64, baseline: f64) {
        self.a.push(candidate);
        self.b.push(baseline);
        self.d.push(candidate - baseline);
    }

    /// Pairs folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.d.count()
    }

    /// Mean of the candidate side.
    #[must_use]
    pub fn candidate_mean(&self) -> f64 {
        self.a.mean()
    }

    /// Mean of the baseline side.
    #[must_use]
    pub fn baseline_mean(&self) -> f64 {
        self.b.mean()
    }

    /// Mean per-seed delta (candidate − baseline). Up to floating-point
    /// rounding this equals `candidate_mean() - baseline_mean()` — the
    /// algebraic identity the property tests pin.
    #[must_use]
    pub fn delta_mean(&self) -> f64 {
        self.d.mean()
    }

    /// Paired t-interval half-width on the mean delta at `alpha`:
    /// `t_{1-α/2, n-1} · s_d / √n`.
    ///
    /// # Errors
    ///
    /// [`StatError::Empty`] / [`StatError::OneSample`] below two pairs —
    /// never `NaN`.
    pub fn paired_ci(&self, alpha: Alpha) -> Result<f64, StatError> {
        let s = self.spread_guard()?;
        Ok(alpha.t(self.count() - 1) * s / (self.count() as f64).sqrt())
    }

    /// The half-width an *unpaired* analysis would price the same delta
    /// at: `t_{1-α/2, n-1} · √((s_a² + s_b²)/n)` — the comparison that
    /// shows what pairing buys. Shares the paired interval's conservative
    /// `n − 1` degrees of freedom, so with positive seed correlation the
    /// paired width is never larger.
    ///
    /// # Errors
    ///
    /// [`StatError::Empty`] / [`StatError::OneSample`] below two pairs.
    pub fn independent_ci(&self, alpha: Alpha) -> Result<f64, StatError> {
        self.spread_guard()?;
        let va = self.a.variance().expect("guarded: n >= 2");
        let vb = self.b.variance().expect("guarded: n >= 2");
        Ok(alpha.t(self.count() - 1) * ((va + vb) / self.count() as f64).sqrt())
    }

    /// Relative improvement: mean delta over the baseline mean's
    /// magnitude. `None` when the baseline mean is (numerically) zero.
    #[must_use]
    pub fn relative(&self) -> Option<f64> {
        let m = self.baseline_mean().abs();
        (self.count() > 0 && m > f64::EPSILON).then(|| self.delta_mean() / m)
    }

    /// The oriented verdict at `alpha`: [`Verdict::Win`] when the interval
    /// on the delta excludes zero *and* the delta points in the metric's
    /// good direction, [`Verdict::Loss`] when it points the other way, and
    /// [`Verdict::Tie`] when zero is inside the interval (or below two
    /// pairs, where no interval exists).
    #[must_use]
    pub fn verdict(&self, alpha: Alpha, higher_is_better: bool) -> Verdict {
        let Ok(hw) = self.paired_ci(alpha) else {
            return Verdict::Tie;
        };
        let d = self.delta_mean();
        if d.abs() <= hw {
            return Verdict::Tie;
        }
        if (d > 0.0) == higher_is_better {
            Verdict::Win
        } else {
            Verdict::Loss
        }
    }

    /// Shared "`n >= 2`" guard for spread statistics, mapping the shortfall
    /// to the precise [`StatError`]; returns `s_d` on success.
    fn spread_guard(&self) -> Result<f64, StatError> {
        match self.count() {
            0 => Err(StatError::Empty),
            1 => Err(StatError::OneSample),
            _ => Ok(self.d.std_dev().expect("n >= 2")),
        }
    }
}

/// One reported metric's delta block: both marginal means, the paired
/// delta with its interval, what an unpaired interval would have been, the
/// relative improvement, and the oriented verdict.
#[derive(Clone, Copy, Debug)]
pub struct DeltaSummary {
    /// Baseline-side mean over the shared seeds.
    pub baseline_mean: f64,
    /// Candidate-side mean over the shared seeds.
    pub candidate_mean: f64,
    /// Mean per-seed delta (candidate − baseline).
    pub delta_mean: f64,
    /// Paired CI half-width at the comparison's alpha (`None` below two
    /// pairs).
    pub ci: Option<f64>,
    /// The unpaired half-width on the same delta (`None` below two pairs);
    /// the gap to [`Self::ci`] is what seed pairing bought.
    pub independent_ci: Option<f64>,
    /// `delta_mean / |baseline_mean|` (`None` for a zero baseline mean).
    pub relative: Option<f64>,
    /// Whether higher values of this metric are better (orients the
    /// verdict).
    pub higher_is_better: bool,
    /// The oriented significance verdict.
    pub verdict: Verdict,
}

/// A full paired comparison of one candidate interface against one
/// baseline over shared replicate seeds: one [`DeltaSummary`] per
/// [`REPORTED_METRICS`] entry plus the pairing bookkeeping.
#[derive(Clone, Debug)]
pub struct CompareStats {
    /// Baseline configuration label.
    pub baseline: String,
    /// Candidate configuration label.
    pub candidate: String,
    /// Verdict significance level.
    pub alpha: Alpha,
    /// Shared-seed pairs aggregated.
    pub n: u32,
    /// Pairs an early stop skipped (`seeds − n`; 0 without a CI target).
    pub saved: u32,
    /// `(metric name, delta block)` in [`REPORTED_METRICS`] order.
    pub metrics: Vec<(&'static str, DeltaSummary)>,
}

impl CompareStats {
    /// Pairs `baseline[i]` with `candidate[i]` (shared replicate seed `i`,
    /// both vectors in replicate order) and aggregates every reported
    /// metric. Extra replicates on one side beyond the shorter vector are
    /// ignored — a pair needs both halves. `seeds` is the spec's cap,
    /// pricing how many pairs early stopping saved.
    ///
    /// # Panics
    ///
    /// Panics when either side is empty — a comparison with zero shared
    /// seeds is a driver bug.
    #[must_use]
    pub fn from_pairs(
        baseline: &[RunSummary],
        candidate: &[RunSummary],
        seeds: u32,
        alpha: Alpha,
    ) -> Self {
        let n = baseline.len().min(candidate.len());
        assert!(n > 0, "a comparison needs at least one shared seed");
        let extract = reported_extractors();
        let mut accs = [PairedSample::new(); 8];
        for (b, c) in baseline.iter().zip(candidate).take(n) {
            for (acc, f) in accs.iter_mut().zip(&extract) {
                acc.push(f(c), f(b));
            }
        }
        let metrics = REPORTED_METRICS
            .iter()
            .zip(&accs)
            .map(|(&name, ps)| {
                let up = higher_is_better(name);
                (
                    name,
                    DeltaSummary {
                        baseline_mean: ps.baseline_mean(),
                        candidate_mean: ps.candidate_mean(),
                        delta_mean: ps.delta_mean(),
                        ci: ps.paired_ci(alpha).ok(),
                        independent_ci: ps.independent_ci(alpha).ok(),
                        relative: ps.relative(),
                        higher_is_better: up,
                        verdict: ps.verdict(alpha, up),
                    },
                )
            })
            .collect();
        Self {
            baseline: baseline[0].config.clone(),
            candidate: candidate[0].config.clone(),
            alpha,
            n: n as u32,
            saved: seeds.saturating_sub(n as u32),
            metrics,
        }
    }

    /// The delta block of one reported metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&DeltaSummary> {
        self.metrics
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, s)| s)
    }

    /// `(wins, losses, ties)` over the reported metrics.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let of = |v: Verdict| self.metrics.iter().filter(|(_, d)| d.verdict == v).count();
        (of(Verdict::Win), of(Verdict::Loss), of(Verdict::Tie))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = fold(h, bytes.len() as u64);
    for &b in bytes {
        h = fold(h, u64::from(b));
    }
    h
}

fn fold_opt(h: u64, v: Option<f64>) -> u64 {
    match v {
        None => fold(h, 0),
        Some(v) => fold(fold(h, 1), v.to_bits()),
    }
}

/// Behavioral digest of a comparison: folds the pairing identity (labels,
/// alpha, pair count) and every delta block — means, delta, both interval
/// widths, relative improvement (all as exact bit patterns) and the
/// verdict — into one FNV-1a value. Two comparisons digest equal **iff**
/// their comparative content is bit-identical, which is what the compare
/// golden table and the serve-vs-local acceptance tests check.
#[must_use]
pub fn compare_digest(stats: &CompareStats) -> u64 {
    let mut h = FNV_OFFSET;
    h = fold_bytes(h, stats.baseline.as_bytes());
    h = fold_bytes(h, stats.candidate.as_bytes());
    h = fold(h, stats.alpha.value().to_bits());
    h = fold(h, u64::from(stats.n));
    for (name, d) in &stats.metrics {
        h = fold_bytes(h, name.as_bytes());
        h = fold(h, d.baseline_mean.to_bits());
        h = fold(h, d.candidate_mean.to_bits());
        h = fold(h, d.delta_mean.to_bits());
        h = fold_opt(h, d.ci);
        h = fold_opt(h, d.independent_ci);
        h = fold_opt(h, d.relative);
        h = fold(h, u64::from(d.higher_is_better));
        h = fold_bytes(h, d.verdict.name().as_bytes());
    }
    h
}

/// The paired stopping rule: given the finished `(baseline, candidate)`
/// pairs **in replicate order**, whether the comparison should stop
/// spawning further shared seeds. Mirrors [`Replication::converged`], with
/// the paired delta as the criterion: stop at the seed cap, and — with a
/// `ci_target`, never before `min_seeds` — once the paired CI half-width
/// on the target metric's delta (at `alpha`) falls below `ci_target`
/// **relative to the baseline mean's magnitude**. (The delta itself may
/// legitimately be near zero, so normalizing by the delta would make two
/// equal interfaces run to the cap; the baseline mean is the scale the
/// relative-improvement headline is quoted in.) A pure function of the
/// ordered pair prefix: serial, `--jobs N`, and server drivers stop at
/// identical counts.
#[must_use]
pub fn paired_converged<'a>(
    rep: &Replication,
    alpha: Alpha,
    pairs: impl IntoIterator<Item = (&'a RunSummary, &'a RunSummary)>,
) -> bool {
    let mut ps = PairedSample::new();
    for (b, c) in pairs {
        ps.push(rep.metric.extract(c), rep.metric.extract(b));
    }
    if ps.count() >= u64::from(rep.seeds) {
        return true;
    }
    let Some(target) = rep.ci_target else {
        return false;
    };
    if ps.count() < u64::from(rep.min_seeds) {
        return false;
    }
    let Ok(hw) = ps.paired_ci(alpha) else {
        return false;
    };
    let scale = ps.baseline_mean().abs();
    scale > f64::EPSILON && hw / scale <= target
}

/// Which half of a comparison pair a work item belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairSide {
    /// The baseline interface.
    Baseline,
    /// The candidate interface.
    Candidate,
}

/// The local paired replicate driver: runs `run(side, replicate)` for both
/// sides of the pair in rounds (round 1 launches each side's mandatory
/// replicates, each later round adds **one** shared seed to both sides),
/// stopping through [`paired_converged`] — so the two sides always hold
/// the same replicate count, and the final count is the smallest ordered
/// pair prefix satisfying the policy, bit-identical at any `jobs` cap.
/// `summary` projects a produced value onto the [`RunSummary`] the
/// stopping rule reads.
///
/// # Errors
///
/// Returns the first `run` error in unit order, once its round completes.
pub fn paired_rounds<T, E, R, S>(
    rep: &Replication,
    alpha: Alpha,
    jobs: Option<usize>,
    run: R,
    summary: S,
) -> Result<(Vec<T>, Vec<T>), E>
where
    T: Send,
    E: Send,
    R: Fn(PairSide, u32) -> Result<T, E> + Sync,
    S: Fn(&T) -> &RunSummary,
{
    let sides = [PairSide::Baseline, PairSide::Candidate];
    let mut out = replicate_rounds_by(
        2,
        rep.initial_count(),
        jobs,
        |p, r| run(sides[p], r),
        |_, all| {
            let n = all[0].len().min(all[1].len());
            paired_converged(
                rep,
                alpha,
                (0..n).map(|i| (summary(&all[0][i]), summary(&all[1][i]))),
            )
        },
    )?;
    let candidate = out.pop().expect("two sides");
    let baseline = out.pop().expect("two sides");
    Ok((baseline, candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{replicate_seed, CiMetric};
    use crate::Simulator;
    use malec_types::SimConfig;

    #[test]
    fn alpha_tables_are_exact_and_conservative() {
        assert_eq!(Alpha::Ten.t(1), 6.314);
        assert_eq!(Alpha::Five.t(1), 12.706);
        assert_eq!(Alpha::One.t(1), 63.657);
        assert_eq!(Alpha::Ten.t(30), 1.697);
        assert_eq!(Alpha::One.t(30), 2.750);
        assert_eq!(Alpha::Ten.t(10_000), 1.658);
        assert_eq!(Alpha::One.t(10_000), 2.617);
        assert!(Alpha::Ten.t(10_000) > 1.645, "above the infinite-df limit");
        assert!(Alpha::One.t(10_000) > 2.576, "above the infinite-df limit");
        for alpha in [Alpha::Ten, Alpha::Five, Alpha::One] {
            assert!(alpha.t(0).is_infinite());
            let mut prev = f64::INFINITY;
            for df in 1..200 {
                assert!(alpha.t(df) <= prev, "t must be non-increasing at {df}");
                prev = alpha.t(df);
            }
        }
        // Tighter alpha, wider quantile, every df.
        for df in 1..200 {
            assert!(Alpha::Ten.t(df) < Alpha::Five.t(df));
            assert!(Alpha::Five.t(df) < Alpha::One.t(df));
        }
        assert_eq!(Alpha::from_value(0.05), Some(Alpha::Five));
        assert_eq!(Alpha::from_value(0.10), Some(Alpha::Ten));
        assert_eq!(Alpha::from_value(0.01), Some(Alpha::One));
        assert_eq!(Alpha::from_value(0.2), None);
        assert_eq!(Alpha::default(), Alpha::Five);
    }

    #[test]
    fn small_pair_counts_are_errors_not_nan() {
        let empty = PairedSample::new();
        assert_eq!(empty.paired_ci(Alpha::Five), Err(StatError::Empty));
        assert_eq!(empty.independent_ci(Alpha::Five), Err(StatError::Empty));
        assert_eq!(empty.relative(), None);
        assert_eq!(empty.verdict(Alpha::Five, true), Verdict::Tie);

        let mut one = PairedSample::new();
        one.push(2.0, 1.0);
        assert_eq!(one.paired_ci(Alpha::Five), Err(StatError::OneSample));
        assert_eq!(one.independent_ci(Alpha::Five), Err(StatError::OneSample));
        assert_eq!(one.delta_mean(), 1.0);
        assert_eq!(one.relative(), Some(1.0));
        assert_eq!(
            one.verdict(Alpha::Five, true),
            Verdict::Tie,
            "one pair certifies nothing"
        );
    }

    #[test]
    fn verdicts_orient_by_metric_direction() {
        // A large consistent positive delta with tiny spread.
        let mut ps = PairedSample::new();
        for i in 0..6 {
            let wobble = f64::from(i) * 1e-6;
            ps.push(2.0 + wobble, 1.0 + wobble);
        }
        assert_eq!(ps.verdict(Alpha::Five, true), Verdict::Win);
        assert_eq!(ps.verdict(Alpha::Five, false), Verdict::Loss);
        // Identical sides: delta 0, width 0 -> tie, not a division blowup.
        let mut same = PairedSample::new();
        for x in [1.0, 2.0, 3.0] {
            same.push(x, x);
        }
        assert_eq!(same.verdict(Alpha::Five, true), Verdict::Tie);
        assert_eq!(Verdict::Win.flipped(), Verdict::Loss);
        assert_eq!(Verdict::Tie.flipped(), Verdict::Tie);
    }

    fn pair_runs(n: u32) -> (Vec<RunSummary>, Vec<RunSummary>) {
        let scenario = malec_trace::scenario::preset_named("store_burst").expect("preset");
        let source = crate::ScenarioSource::Scenario(scenario);
        let run = |cfg: SimConfig, r: u32| {
            Simulator::new(cfg)
                .run_source(&source, 2_000, replicate_seed(7, r))
                .expect("generator sources cannot fail")
        };
        (
            (0..n).map(|r| run(SimConfig::base1ldst(), r)).collect(),
            (0..n).map(|r| run(SimConfig::malec(), r)).collect(),
        )
    }

    #[test]
    fn compare_stats_cover_every_reported_metric_and_digest_is_sensitive() {
        let (base, cand) = pair_runs(4);
        let stats = CompareStats::from_pairs(&base, &cand, 6, Alpha::Five);
        assert_eq!(stats.n, 4);
        assert_eq!(stats.saved, 2);
        assert_eq!(stats.baseline, "Base1ldst");
        assert_eq!(stats.candidate, "MALEC");
        assert_eq!(stats.metrics.len(), REPORTED_METRICS.len());
        let ipc = stats.metric("ipc").expect("ipc reported");
        assert!(
            (ipc.delta_mean - (ipc.candidate_mean - ipc.baseline_mean)).abs()
                < 1e-12 * ipc.candidate_mean.abs().max(1.0)
        );
        assert!(ipc.ci.is_some() && ipc.independent_ci.is_some());
        let (w, l, t) = stats.tally();
        assert_eq!(w + l + t, REPORTED_METRICS.len());

        let a = compare_digest(&stats);
        assert_eq!(a, compare_digest(&stats), "digest is deterministic");
        let mut tweaked = stats.clone();
        tweaked.metrics[0].1.delta_mean += 1e-9;
        assert_ne!(a, compare_digest(&tweaked), "one bit flips the digest");
        let fewer = CompareStats::from_pairs(&base[..3], &cand[..3], 6, Alpha::Five);
        assert_ne!(a, compare_digest(&fewer), "the pair count is folded");
    }

    #[test]
    fn mismatched_side_lengths_pair_the_shared_prefix() {
        let (base, cand) = pair_runs(4);
        let stats = CompareStats::from_pairs(&base[..3], &cand, 4, Alpha::Five);
        assert_eq!(stats.n, 3, "pairs need both halves");
        assert_eq!(stats.saved, 1);
    }

    #[test]
    fn paired_convergence_is_a_pure_prefix_function() {
        let (base, cand) = pair_runs(6);
        let rep = Replication {
            seeds: 6,
            min_seeds: 2,
            ci_target: Some(0.9), // generous: certifies at the minimum
            metric: CiMetric::Ipc,
        };
        let pairs = |n: usize| base[..n].iter().zip(&cand[..n]);
        assert!(
            !paired_converged(&rep, Alpha::Five, pairs(1)),
            "below min_seeds never stops"
        );
        let at_two = paired_converged(&rep, Alpha::Five, pairs(2));
        assert_eq!(
            paired_converged(&rep, Alpha::Five, pairs(2)),
            at_two,
            "pure: same prefix, same answer"
        );
        assert!(
            paired_converged(&rep, Alpha::Five, pairs(6)),
            "the seed cap always stops"
        );
        // Without a target, only the cap stops the pair.
        let fixed = Replication::fixed(4);
        assert!(!paired_converged(&fixed, Alpha::Five, pairs(3)));
        assert!(paired_converged(&fixed, Alpha::Five, pairs(4)));
    }

    #[test]
    fn paired_rounds_keep_both_sides_in_lockstep() {
        let scenario = malec_trace::scenario::preset_named("store_burst").expect("preset");
        let source = crate::ScenarioSource::Scenario(scenario);
        let rep = Replication {
            seeds: 8,
            min_seeds: 2,
            ci_target: Some(0.5),
            metric: CiMetric::Ipc,
        };
        let run = |side: PairSide, r: u32| {
            let cfg = match side {
                PairSide::Baseline => SimConfig::base1ldst(),
                PairSide::Candidate => SimConfig::malec(),
            };
            Ok::<_, std::convert::Infallible>(
                Simulator::new(cfg)
                    .run_source(&source, 2_000, replicate_seed(7, r))
                    .expect("generator sources cannot fail"),
            )
        };
        let (b1, c1) =
            paired_rounds(&rep, Alpha::Five, Some(1), run, |s| s).unwrap_or_else(|e| match e {});
        let (b4, c4) =
            paired_rounds(&rep, Alpha::Five, Some(4), run, |s| s).unwrap_or_else(|e| match e {});
        assert_eq!(b1.len(), c1.len(), "sides stay in lockstep");
        assert!(b1.len() >= 2 && b1.len() <= 8);
        assert_eq!(b1.len(), b4.len(), "fan-out must not change the count");
        for (x, y) in b1.iter().zip(&b4).chain(c1.iter().zip(&c4)) {
            assert_eq!(crate::digest::digest(x), crate::digest::digest(y));
        }
    }
}
